// Time-series sampler tests: bounded-memory decimation, deterministic
// sampling (same spec + interval => identical series), the Grid/ResultSet
// wiring, and the paper-facing acceptance: jacobi's occupancy-vs-time under
// FullCoh/PT/RaCCD reproduces Fig. 8's ordering at tiny size.
#include <gtest/gtest.h>

#include <filesystem>

#include "raccd/harness/grid.hpp"
#include "raccd/metrics/series.hpp"

namespace raccd {
namespace {

TEST(Series, DecimationBoundsMemoryAndDoublesInterval) {
  Series s({"m"}, 10);
  for (Cycle t = 10; t <= 10 * 64; t += 10) {
    s.push(t, {static_cast<double>(t)}, /*max_samples=*/16);
    EXPECT_LE(s.samples().size(), 16u);
  }
  EXPECT_GT(s.interval(), 10u);         // doubled at least twice
  EXPECT_GE(s.samples().size(), 8u);    // still covers the run
  // Time order and first-sample retention survive decimation.
  EXPECT_EQ(s.samples().front().t, 10u);
  for (std::size_t i = 1; i < s.samples().size(); ++i) {
    EXPECT_LT(s.samples()[i - 1].t, s.samples()[i].t);
  }
}

TEST(Series, ColumnLookupAcceptsNameOrKey) {
  Series s({"dir.avg_occupancy", "noc.flit_hops"}, 5);
  s.push(5, {0.5, 100.0}, 64);
  EXPECT_EQ(s.column("dir.avg_occupancy"), 0);
  EXPECT_EQ(s.column("avg_dir_occupancy"), 0);  // flat key resolves too
  EXPECT_EQ(s.column("noc_flit_hops"), 1);
  EXPECT_EQ(s.column("cycles"), -1);
  EXPECT_EQ(s.values("avg_dir_occupancy"), std::vector<double>{0.5});
}

TEST(Series, JsonShapeAndNullForNonFinite) {
  Series s({"a"}, 100);
  s.push(100, {1.0}, 8);
  s.push(200, {std::numeric_limits<double>::quiet_NaN()}, 8);
  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"interval\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\": [\"a\"]"), std::string::npos);
  EXPECT_NE(json.find("[100, 1]"), std::string::npos);
  EXPECT_NE(json.find("[200, null]"), std::string::npos);
}

TEST(StatSampler, SamplesOncePerCrossedBoundary) {
  int snaps = 0;
  SeriesConfig cfg;
  cfg.interval = 100;
  StatSampler sampler(cfg, [&snaps](Cycle, SimStats&) { ++snaps; });
  sampler.observe(10);   // below first boundary
  sampler.observe(99);
  EXPECT_EQ(snaps, 0);
  sampler.observe(100);  // boundary
  EXPECT_EQ(snaps, 1);
  sampler.observe(150);  // same window
  EXPECT_EQ(snaps, 1);
  sampler.observe(450);  // several boundaries crossed -> one sample
  EXPECT_EQ(snaps, 2);
  sampler.finish(460);
  EXPECT_EQ(snaps, 3);
  sampler.finish(460);   // idempotent: last sample already at 460
  EXPECT_EQ(snaps, 3);
  ASSERT_EQ(sampler.series().samples().size(), 3u);
  EXPECT_EQ(sampler.series().samples()[0].t, 100u);
  EXPECT_EQ(sampler.series().samples()[1].t, 450u);
  EXPECT_EQ(sampler.series().samples()[2].t, 460u);
  EXPECT_EQ(sampler.series().metric_names().size(),
            default_series_metrics().size());
}

TEST(SeriesRun, DeterministicAcrossRepeatedRuns) {
  RunSpec spec;
  spec.app = "histo";
  spec.size = SizeClass::kTiny;
  spec.mode = CohMode::kRaCCD;
  spec.series_interval = 2000;
  Series a, b;
  (void)run_one(spec, &a);
  (void)run_one(spec, &b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(SeriesRun, GridCarriesOneSeriesPerSpecAndSkipsTheStatsCache) {
  const std::string dir = "test_series_tmp";
  std::filesystem::remove_all(dir);
  RunOptions opts;
  opts.cache_dir = dir;
  const Grid grid = Grid()
                        .workload("histo")
                        .size(SizeClass::kTiny)
                        .modes({CohMode::kFullCoh, CohMode::kRaCCD})
                        .sample_series(2000, "dir.avg_occupancy,cycles");
  const ResultSet first = grid.run(opts);
  ASSERT_TRUE(first.has_series());
  ASSERT_EQ(first.size(), 2u);
  EXPECT_FALSE(first.series(0).empty());
  ASSERT_EQ(first.series(0).metric_names().size(), 2u);
  EXPECT_EQ(first.series(0).metric_names()[0], "dir.avg_occupancy");
  // Second run hits the (now warm) stats cache for the stats — but the
  // series must still be recorded, not silently empty.
  const ResultSet second = grid.run(opts);
  ASSERT_TRUE(second.has_series());
  EXPECT_EQ(first.series(0), second.series(0));
  EXPECT_EQ(first.series(1), second.series(1));
  // The sampled cycles column ends at the run's final cycle count.
  const std::vector<double> cyc = first.series(0).values("cycles");
  EXPECT_DOUBLE_EQ(cyc.back(), static_cast<double>(first[0].cycles));
  std::filesystem::remove_all(dir);
}

// The ISSUE acceptance: occupancy-vs-time under FullCoh/PT/RaCCD reproduces
// Fig. 8's ordering at tiny size. jacobi's tiny default underfills the
// scaled directory, so the test bumps the grid to n=192 — still < 1 s.
TEST(Fig08Series, OccupancyOverTimeReproducesThePaperOrdering) {
  RunOptions opts;
  opts.use_cache = false;
  const ResultSet rs = Grid()
                           .workload("jacobi:n=192,iters=4")
                           .size(SizeClass::kTiny)
                           .modes(kAllModes)
                           .sample_series(4000, "dir.avg_occupancy")
                           .run(opts);
  ASSERT_EQ(rs.size(), kAllModes.size());
  const auto occupancy = [&rs](CohMode mode) {
    for (std::size_t i = 0; i < rs.size(); ++i) {
      if (rs.spec(i).mode == mode) return rs.series(i).values("dir.avg_occupancy");
    }
    ADD_FAILURE() << "mode missing from grid";
    return std::vector<double>{};
  };
  const std::vector<double> full = occupancy(CohMode::kFullCoh);
  const std::vector<double> pt = occupancy(CohMode::kPT);
  const std::vector<double> raccd = occupancy(CohMode::kRaCCD);
  ASSERT_GT(full.size(), 4u);

  // FullCoh: occupancy only grows (monotone-ish, up to capacity/evictions).
  for (std::size_t i = 1; i < full.size(); ++i) {
    EXPECT_GE(full[i], full[i - 1] - 1e-9) << "FullCoh shed entries at sample " << i;
  }
  EXPECT_GT(full.back(), 0.05);

  const auto mean = [](const std::vector<double>& v) {
    double sum = 0.0;
    for (const double x : v) sum += x;
    return v.empty() ? 0.0 : sum / static_cast<double>(v.size());
  };
  // Fig. 8 ordering: FullCoh > PT > RaCCD; RaCCD sheds its entries at task
  // ends (jacobi is fully annotated, so it holds ~none).
  EXPECT_GT(mean(full), mean(pt));
  EXPECT_GT(mean(pt), mean(raccd));
  EXPECT_LT(mean(raccd), 0.01);
}

}  // namespace
}  // namespace raccd
