// Multi-worker sweep progress reporting.
//
// One reporter instance serializes all output behind a mutex, so concurrent
// workers never interleave partial lines. Two rendering modes, chosen by
// whether the stream is a TTY:
//
//  * TTY: a single status line repainted in place with a carriage return —
//    [done/total] runs/s, ETA, and a compact per-worker state strip
//    (running-spec abbreviation or '-' when idle).
//  * non-TTY (CI logs, redirects): one plain append-only line per finished
//    run, same fields as the serial harness always printed — logs stay
//    greppable and diffs stay readable.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include <chrono>

namespace raccd {

class ProgressReporter {
 public:
  /// `total` *uncached* runs across `workers` workers; `enabled` false =
  /// fully silent (the --verbose gate). `force_tty` overrides isatty for
  /// tests. `cached` is how many specs the sweep satisfied from the stats
  /// cache before any run started: cached hits are displayed, but never
  /// enter the rate/ETA estimate (a cache hit completes in microseconds, so
  /// counting it as a finished run made early ETAs wildly optimistic).
  ProgressReporter(std::size_t total, unsigned workers, bool enabled,
                   std::FILE* stream = stderr, int force_tty = -1,
                   std::size_t cached = 0);
  ~ProgressReporter();

  /// Worker `w` began simulating `key` (kNoWorker for the inline -j1 path).
  static constexpr unsigned kNoWorker = ~0u;
  void run_started(unsigned worker, const std::string& key);
  /// Worker `w` finished `key`; advances done-count and repaints/prints.
  void run_finished(unsigned worker, const std::string& key);
  /// Sampled-simulation phase transition on worker `w`: the strip entry
  /// gains a `|ffwd<N>` / `|det<N>` suffix (N = window index). TTY-only
  /// chrome; repaints are throttled since windows can turn over quickly.
  void phase_changed(unsigned worker, bool ffwd, std::uint64_t window);
  /// Open-loop service release on worker `w`: the strip entry gains a
  /// `|rel<N>` suffix (N = requests released so far). Same TTY-only,
  /// repaint-throttled chrome as phase_changed.
  void release_changed(unsigned worker, std::uint64_t released);
  /// A run failed: always printed (even repaint mode gets a plain line).
  void run_failed(unsigned worker, const std::string& key,
                  const std::string& error);
  /// Extra text (the sweep's wall-time profile) appended to the final
  /// summary line that finish() prints.
  void set_summary_extra(std::string extra);
  /// Erase/complete the status line (TTY mode) and, when enabled, print the
  /// final `N run, M cached, K failed` summary line; idempotent.
  void finish();

  [[nodiscard]] std::size_t done() const;

 private:
  void repaint_locked();
  [[nodiscard]] std::string rate_eta_locked() const;

  mutable std::mutex mutex_;
  std::FILE* stream_;
  std::size_t total_;
  std::size_t done_ = 0;
  std::size_t cached_ = 0;  ///< preloaded hits; excluded from rate/ETA
  std::size_t failed_ = 0;
  std::string summary_extra_;
  bool summary_printed_ = false;
  bool enabled_;
  bool tty_;
  bool line_open_ = false;  ///< a repainted status line is on screen
  std::vector<std::string> running_;  ///< per-worker current spec key
  std::vector<std::string> phase_;    ///< per-worker sampled-phase suffix
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_phase_paint_{};
};

}  // namespace raccd
