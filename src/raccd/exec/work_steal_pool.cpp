#include "raccd/exec/work_steal_pool.hpp"

#include <algorithm>
#include <utility>

namespace raccd {
namespace {

/// Worker-index TLS so progress reporting can label the calling worker.
/// kAnyWorker outside pool threads; set once per worker thread at startup.
thread_local unsigned t_worker_index = WorkStealPool::kAnyWorker;
thread_local const WorkStealPool* t_worker_pool = nullptr;

}  // namespace

WorkStealPool::WorkStealPool(unsigned workers) {
  workers = std::max(1u, workers);
  deques_.resize(workers);
  threads_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

WorkStealPool::~WorkStealPool() {
  cancel();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkStealPool::submit(Task task, unsigned worker_hint) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const unsigned w = worker_hint != kAnyWorker
                           ? worker_hint % worker_count()
                           : std::exchange(next_worker_,
                                           (next_worker_ + 1) % worker_count());
    deques_[w].push_back(std::move(task));
    ++unfinished_;
  }
  work_cv_.notify_one();
}

bool WorkStealPool::try_pop_locked(unsigned self, Task& out) {
  if (!deques_[self].empty()) {
    out = std::move(deques_[self].back());  // own work: LIFO
    deques_[self].pop_back();
    return true;
  }
  // Victim scan starts just past self so thieves spread across victims
  // instead of all hammering worker 0.
  for (std::size_t k = 1; k < deques_.size(); ++k) {
    const std::size_t v = (self + k) % deques_.size();
    if (!deques_[v].empty()) {
      out = std::move(deques_[v].front());  // stolen work: FIFO
      deques_[v].pop_front();
      ++steals_;
      return true;
    }
  }
  return false;
}

void WorkStealPool::worker_loop(unsigned self) {
  t_worker_index = self;
  t_worker_pool = this;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || try_pop_locked(self, task); });
      if (!task) return;  // stop_ with nothing left to pop
    }
    try {
      task();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    bool all_done = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      all_done = --unfinished_ == 0;
    }
    if (all_done) idle_cv_.notify_all();
  }
}

void WorkStealPool::wait() {
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [&] { return unfinished_ == 0; });
    err = std::exchange(first_error_, nullptr);
  }
  if (err) std::rethrow_exception(err);
}

void WorkStealPool::cancel() {
  bool all_done = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& dq : deques_) {
      unfinished_ -= dq.size();
      dq.clear();
    }
    all_done = unfinished_ == 0;
  }
  if (all_done) idle_cv_.notify_all();
}

std::uint64_t WorkStealPool::steal_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return steals_;
}

unsigned WorkStealPool::current_worker() const noexcept {
  return t_worker_pool == this ? t_worker_index : kAnyWorker;
}

}  // namespace raccd
