// The paper's Fig. 1 example: task-based blocked Cholesky factorization.
// Runs the factorization on the simulated machine under RaCCD, verifies the
// reconstruction L*L^T against the original matrix, prints coherence stats,
// and exports the task dependence graph as Graphviz dot (Fig. 1, right).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string_view>

#include "raccd/apps/app.hpp"
#include "raccd/sim/report.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  SimConfig cfg = SimConfig::scaled(CohMode::kRaCCD);
  print_config(cfg);

  Machine machine(cfg);
  const SizeClass size = (argc > 1 && std::string_view(argv[1]) == "--tiny")
                             ? SizeClass::kTiny
                             : SizeClass::kSmall;
  auto app = make_app("cholesky", AppConfig{size, 0xC401E5C1ULL});
  std::printf("\nproblem: %s\n", app->problem().c_str());
  app->run(machine);

  const std::string err = app->verify(machine);
  std::printf("verification: %s\n\n", err.empty() ? "PASS (L*L^T == A)" : err.c_str());

  const std::string dot = machine.runtime().tdg().to_dot();
  std::error_code ec;
  std::filesystem::create_directories("results", ec);
  const char* dot_path = "results/cholesky_tdg.dot";
  std::ofstream out(dot_path);
  if (out) {
    out << dot;
    std::printf("task dependence graph written to %s (%zu tasks)\n", dot_path,
                machine.runtime().task_count());
  }

  const SimStats stats = machine.collect();
  print_report(stats);
  return err.empty() ? 0 : 1;
}
