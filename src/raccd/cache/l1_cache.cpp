#include "raccd/cache/l1_cache.hpp"

#include "raccd/common/assert.hpp"
#include "raccd/common/bits.hpp"

namespace raccd {

L1Cache::L1Cache(const L1Geometry& geo)
    : sets_(geo.sets()),
      ways_(geo.ways),
      legacy_(legacy_structures()),
      repl_(geo.repl, geo.sets(), geo.ways) {
  RACCD_ASSERT(is_pow2(sets_), "L1 set count must be a power of two");
  lines_.resize(static_cast<std::size_t>(sets_) * ways_);
  tags_.assign(static_cast<std::size_t>(sets_) * ways_, kNoTag);
}

L1Line* L1Cache::find(LineAddr line) noexcept {
  const std::uint32_t set = set_of(line);
  if (!legacy_) {
    const LineAddr* tags = tags_.data() + static_cast<std::size_t>(set) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      if (tags[w] == line) return &at(set, w);
    }
    return nullptr;
  }
  for (std::uint32_t w = 0; w < ways_; ++w) {
    L1Line& l = at(set, w);
    if (l.valid && l.line == line) return &l;
  }
  return nullptr;
}

const L1Line* L1Cache::find(LineAddr line) const noexcept {
  return const_cast<L1Cache*>(this)->find(line);
}

void L1Cache::touch(const L1Line& l) noexcept {
  const auto idx = static_cast<std::size_t>(&l - lines_.data());
  repl_.touch(static_cast<std::uint32_t>(idx / ways_),
              static_cast<std::uint32_t>(idx % ways_));
}

L1Line L1Cache::fill(LineAddr line, bool nc, Mesi coh, bool dirty, std::uint64_t version) {
  RACCD_DEBUG_ASSERT(find(line) == nullptr, "fill of already-resident line");
  const std::uint32_t set = set_of(line);
  std::uint32_t way = ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (!at(set, w).valid) {
      way = w;
      break;
    }
  }
  L1Line evicted{};
  if (way == ways_) {
    way = repl_.victim(set);
    evicted = at(set, way);
    --valid_count_;
  }
  at(set, way) = L1Line{line, true, nc, dirty, nc ? Mesi::kInvalid : coh, version};
  set_tag(set, way, line);
  ++valid_count_;
  repl_.touch(set, way);
  return evicted;
}

L1Line L1Cache::invalidate(LineAddr line) noexcept {
  L1Line* l = find(line);
  if (l == nullptr) return L1Line{};
  const L1Line old = *l;
  *l = L1Line{};
  const auto idx = static_cast<std::size_t>(l - lines_.data());
  tags_[idx] = kNoTag;
  --valid_count_;
  return old;
}

}  // namespace raccd
