// File-backed SimStats cache: one key=value text file per run spec.
// The format version is baked into the key, so stale results from older
// model revisions are never reused.
#pragma once

#include <optional>
#include <string>

#include "raccd/sim/stats.hpp"

namespace raccd {

/// Bump when the simulation model or stats layout changes.
/// v5: coherence-backend seam — task-end ADR evaluation is a single
/// poll_all (the redundant dirty-bank poll is gone), so RaCCD+ADR numbers
/// can differ from v4 caches.
inline constexpr unsigned kStatsFormatVersion = 5;

[[nodiscard]] std::string stats_to_text(const SimStats& s);
[[nodiscard]] std::optional<SimStats> stats_from_text(const std::string& text);

/// Load a cached result for `key` from `dir` (nullopt on miss/corruption).
[[nodiscard]] std::optional<SimStats> cache_load(const std::string& dir,
                                                 const std::string& key);
/// Store a result under `dir` (nested directories are created as needed).
/// Returns false when the directory cannot be created or the write fails —
/// callers decide whether to report (run_all does, under --verbose).
bool cache_store(const std::string& dir, const std::string& key, const SimStats& s);

}  // namespace raccd
