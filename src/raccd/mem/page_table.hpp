// Per-address-space page table: dense vpage -> pframe map.
//
// The simulated applications share one address space (the paper runs one
// parallel program at a time); virtual pages are allocated densely from 0 by
// SimMemory, so a flat vector is the natural representation.
#pragma once

#include <cstdint>
#include <vector>

#include "raccd/common/types.hpp"

namespace raccd {

class PageTable {
 public:
  static constexpr std::int64_t kUnmapped = -1;

  void map(PageNum vpage, PageNum pframe);

  [[nodiscard]] bool mapped(PageNum vpage) const noexcept {
    return vpage < entries_.size() && entries_[vpage] != kUnmapped;
  }

  /// Physical frame of a mapped virtual page. Asserts when unmapped.
  [[nodiscard]] PageNum frame_of(PageNum vpage) const;

  /// Full virtual-to-physical byte address translation.
  [[nodiscard]] PAddr translate(VAddr va) const;

  [[nodiscard]] std::uint64_t mapped_pages() const noexcept { return mapped_count_; }

 private:
  std::vector<std::int64_t> entries_;
  std::uint64_t mapped_count_ = 0;
};

}  // namespace raccd
