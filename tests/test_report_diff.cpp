// raccd-report diff library tests: the BENCH_grid.json loader (escapes,
// null, tolerant of non-numeric fields), per-kind tolerance verdicts, and
// the gate semantics (missing baseline coverage fails, new keys don't).
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "raccd/metrics/diff.hpp"

namespace raccd {
namespace {

[[nodiscard]] BenchLog one_key(const std::string& key, MetricMap metrics) {
  BenchLog log;
  log[key] = std::move(metrics);
  return log;
}

TEST(BenchJsonParser, ParsesOurEmitterShape) {
  BenchLog log;
  ASSERT_EQ(parse_bench_json(R"({
  "jacobi-small-v5": {"cycles": 1000, "llc_hit_rate": 0.25, "avg_dir_occupancy": null},
  "histo-small-v5": {"cycles": 2000, "dir_accesses": 7}
})",
                             log),
            "");
  ASSERT_EQ(log.size(), 2u);
  EXPECT_DOUBLE_EQ(log.at("jacobi-small-v5").at("cycles"), 1000.0);
  EXPECT_DOUBLE_EQ(log.at("jacobi-small-v5").at("llc_hit_rate"), 0.25);
  EXPECT_TRUE(std::isnan(log.at("jacobi-small-v5").at("avg_dir_occupancy")));
  EXPECT_DOUBLE_EQ(log.at("histo-small-v5").at("dir_accesses"), 7.0);
}

TEST(BenchJsonParser, HandlesEscapesNestingAndEmpty) {
  BenchLog log;
  ASSERT_EQ(parse_bench_json("{}", log), "");
  EXPECT_TRUE(log.empty());
  // Escaped key, ignored string/array/nested-object fields, booleans.
  ASSERT_EQ(parse_bench_json(R"({"k\"ey": {"a": 1, "note": "x,\"y\"",
    "nested": {"deep": [1, 2, {"z": 3}]}, "flag": true}})",
                             log),
            "");
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log.at("k\"ey").at("a"), 1.0);
  EXPECT_DOUBLE_EQ(log.at("k\"ey").at("flag"), 1.0);
  EXPECT_EQ(log.at("k\"ey").count("note"), 0u);  // strings are skipped
  // Malformed input reports an error instead of asserting.
  EXPECT_NE(parse_bench_json("{\"k\": {", log), "");
  EXPECT_NE(parse_bench_json("[1,2]", log), "");
}

TEST(BenchDiff, IdenticalLogsPass) {
  const BenchLog log = one_key("k", {{"cycles", 1000.0}, {"dir_accesses", 5.0}});
  const BenchDiff d = diff_bench_logs(log, log);
  EXPECT_EQ(d.regressions(), 0u);
  EXPECT_EQ(d.keys_compared, 1u);
  EXPECT_EQ(d.metrics_compared, 2u);
  EXPECT_NE(d.report().find("PASS"), std::string::npos);
}

TEST(BenchDiff, CyclesWithinToleranceButCountersExact) {
  const BenchLog base = one_key("k", {{"cycles", 1000.0}, {"dir_accesses", 100.0}});
  // +1% cycles: inside the default 2% band.
  BenchDiff d = diff_bench_logs(base, one_key("k", {{"cycles", 1010.0},
                                                    {"dir_accesses", 100.0}}));
  EXPECT_EQ(d.regressions(), 0u);
  // +3% cycles: out.
  d = diff_bench_logs(base, one_key("k", {{"cycles", 1030.0}, {"dir_accesses", 100.0}}));
  ASSERT_EQ(d.exceeded.size(), 1u);
  EXPECT_EQ(d.exceeded[0].metric, "cycles");
  EXPECT_NEAR(d.exceeded[0].delta_pct, 3.0, 1e-9);
  EXPECT_NE(d.report().find("FAIL"), std::string::npos);
  // A single-count drift in a counter fails: determinism is the contract.
  d = diff_bench_logs(base, one_key("k", {{"cycles", 1000.0}, {"dir_accesses", 101.0}}));
  ASSERT_EQ(d.exceeded.size(), 1u);
  EXPECT_EQ(d.exceeded[0].metric, "dir_accesses");
  // ...unless the caller loosens the counter band.
  DiffTolerances loose;
  loose.counter_pct = 5.0;
  EXPECT_EQ(diff_bench_logs(base, one_key("k", {{"cycles", 1000.0},
                                                {"dir_accesses", 101.0}}),
                            loose)
                .regressions(),
            0u);
}

TEST(BenchDiff, RatiosUseAnAbsoluteBand) {
  const BenchLog base = one_key("k", {{"llc_hit_rate", 0.50}});
  EXPECT_EQ(diff_bench_logs(base, one_key("k", {{"llc_hit_rate", 0.51}})).regressions(),
            0u);  // |delta| = 0.01 <= 0.02
  EXPECT_EQ(diff_bench_logs(base, one_key("k", {{"llc_hit_rate", 0.55}})).regressions(),
            1u);  // 0.05 > 0.02
}

TEST(BenchDiff, ZeroBaselinesAndNulls) {
  // 0 -> 0 passes even for exact counters; 0 -> nonzero fails.
  const BenchLog zero = one_key("k", {{"dir_accesses", 0.0}});
  EXPECT_EQ(diff_bench_logs(zero, zero).regressions(), 0u);
  EXPECT_EQ(diff_bench_logs(zero, one_key("k", {{"dir_accesses", 3.0}})).regressions(),
            1u);
  // null vs null passes; null vs value is a change.
  const double nan = std::nan("");
  EXPECT_EQ(diff_bench_logs(one_key("k", {{"avg_dir_occupancy", nan}}),
                            one_key("k", {{"avg_dir_occupancy", nan}}))
                .regressions(),
            0u);
  EXPECT_EQ(diff_bench_logs(one_key("k", {{"avg_dir_occupancy", nan}}),
                            one_key("k", {{"avg_dir_occupancy", 0.5}}))
                .regressions(),
            1u);
}

TEST(BenchDiff, CoverageSemantics) {
  const BenchLog base = one_key("old", {{"cycles", 1.0}});
  const BenchLog cand = one_key("new", {{"cycles", 1.0}});
  const BenchDiff d = diff_bench_logs(base, cand);
  // Baseline key missing from the candidate -> regression (coverage loss);
  // a brand-new candidate key is informational only.
  ASSERT_EQ(d.only_in_base.size(), 1u);
  EXPECT_EQ(d.only_in_base[0], "old");
  ASSERT_EQ(d.only_in_candidate.size(), 1u);
  EXPECT_EQ(d.regressions(), 1u);
  // A metric the baseline had but the candidate dropped is also a failure.
  const BenchDiff d2 = diff_bench_logs(one_key("k", {{"cycles", 1.0}, {"tasks", 2.0}}),
                                       one_key("k", {{"cycles", 1.0}}));
  ASSERT_EQ(d2.exceeded.size(), 1u);
  EXPECT_EQ(d2.exceeded[0].metric, "tasks");
}

TEST(BenchDiff, FileRoundTripAndMarkdownReport) {
  const std::string dir = "test_report_diff_tmp";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const auto write = [&](const std::string& name, const std::string& text) {
    std::ofstream out(dir + "/" + name);
    out << text;
  };
  write("base.json", "{\n  \"k\": {\"cycles\": 1000, \"tasks\": 4}\n}\n");
  write("cand.json", "{\n  \"k\": {\"cycles\": 1500, \"tasks\": 4}\n}\n");
  BenchLog base, cand;
  ASSERT_EQ(load_bench_json(dir + "/base.json", base), "");
  ASSERT_EQ(load_bench_json(dir + "/cand.json", cand), "");
  EXPECT_NE(load_bench_json(dir + "/missing.json", base), "");
  const BenchDiff d = diff_bench_logs(base, cand);
  ASSERT_EQ(d.regressions(), 1u);
  const std::string md = d.report(/*markdown=*/true);
  EXPECT_NE(md.find("FAIL"), std::string::npos);
  EXPECT_NE(md.find("| `k` | cycles |"), std::string::npos);
  EXPECT_NE(md.find("+50.000%"), std::string::npos);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace raccd
