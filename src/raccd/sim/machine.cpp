#include "raccd/sim/machine.hpp"

#include <algorithm>

#include "raccd/common/assert.hpp"

namespace raccd {
namespace {

/// The topology's per-socket memory ranges must describe the same frame
/// space PhysMemory allocates from — derive them from one place.
[[nodiscard]] SimConfig finalized(SimConfig cfg) {
  cfg.fabric.topo.phys_frames = cfg.phys_mb * (1024 * 1024 / kPageBytes);
  // Pre-size the fabric's memory version map (clamped there) so large runs
  // don't rehash it unboundedly.
  cfg.fabric.phys_lines_hint = cfg.fabric.topo.phys_frames * kLinesPerPage;
  return cfg;
}

}  // namespace

Machine::Machine(const SimConfig& cfg)
    : cfg_(finalized(cfg)),
      legacy_(legacy_structures()),
      checker_(/*strict=*/true),
      fabric_(cfg_.fabric, cfg_.enable_checker ? &checker_ : nullptr),
      adr_(fabric_, cfg_.adr),
      mem_(cfg_.fabric.topo.phys_frames, cfg_.alloc_policy, cfg_.seed,
           cfg_.fabric.topo.sockets),
      rt_(cfg_.sched, cfg_.fabric.cores) {
  for (std::uint32_t c = 0; c < cfg_.fabric.cores; ++c) {
    tlbs_.emplace_back(cfg_.tlb_entries);
  }
  cores_.resize(cfg_.fabric.cores);
  backend_ = make_backend(BackendContext{cfg_, fabric_, mem_, tlbs_});
  if (cfg_.series.interval > 0) {
    sampler_ = std::make_unique<StatSampler>(
        cfg_.series, [this](Cycle at, SimStats& s) { snapshot_stats(at, s); });
  }
}

TaskId Machine::spawn(TaskDesc desc) {
  const Cycle cost = cfg_.timing.task_create_cycles +
                     cfg_.timing.dep_analysis_cycles * desc.deps.size();
  main_clock_ += cost;
  create_cycles_ += cost;
  return rt_.create_task(std::move(desc));
}

CoreId Machine::pop_min_clock_core() {
  while (!run_heap_.empty()) {
    const auto [clock, c] = run_heap_.top();
    run_heap_.pop();
    const CoreState& cs = cores_[c];
    if (!cs.sleeping && cs.clock == clock) return c;
  }
  return kNoCore;
}

void Machine::wake_sleepers(Cycle at) {
  for (CoreId c = 0; c < cores_.size(); ++c) {
    CoreState& cs = cores_[c];
    if (cs.sleeping) {
      cs.sleeping = false;
      cs.clock = std::max(cs.clock, at);
      run_heap_.emplace(cs.clock, c);
    }
  }
}

void Machine::taskwait() {
  const Cycle phase_start = main_clock_;
  run_heap_ = {};
  for (CoreId c = 0; c < cores_.size(); ++c) {
    cores_[c].clock = phase_start;
    cores_[c].sleeping = false;
    run_heap_.emplace(phase_start, c);
  }
  while (!rt_.all_finished()) {
    const CoreId c = pop_min_clock_core();
    RACCD_ASSERT(c != kNoCore, "deadlock: all cores asleep with unfinished tasks");
    for (;;) {
      // The stepped core holds the globally minimal clock, so sample times
      // are non-decreasing — the series is a consistent global timeline.
      if (sampler_) sampler_->observe(cores_[c].clock);
      step(c);
      if (cores_[c].sleeping) break;
      // Fast path: keep stepping this core while it provably remains the
      // global minimum, skipping the per-step heap round trip. Strict
      // (clock, id) comparison against the top reproduces the push-then-pop
      // order exactly (a stale top only underestimates its core's clock, so
      // it can only send us down the slow path, never reorder steps).
      if (!legacy_ && !rt_.all_finished() &&
          (run_heap_.empty() || ClockEntry{cores_[c].clock, c} < run_heap_.top())) {
        continue;
      }
      run_heap_.emplace(cores_[c].clock, c);
      break;
    }
  }
  Cycle end = phase_start;
  for (const auto& cs : cores_) end = std::max(end, cs.clock);
  main_clock_ = end;
}

void Machine::step(CoreId c) {
  CoreState& cs = cores_[c];
  if (cs.current == kNoTask) {
    TaskId t = kNoTask;
    if (!rt_.pop_ready(c, t)) {
      cs.sleeping = true;  // woken by the next task completion
      return;
    }
    cs.clock += cfg_.timing.schedule_cycles;
    schedule_cycles_ += cfg_.timing.schedule_cycles;
    start_task(c, t);
    return;
  }
  if (cs.cursor < cs.trace.records().size()) {
    replay_record(c);
    return;
  }
  finish_task(c);
}

void Machine::start_task(CoreId c, TaskId t) {
  CoreState& cs = cores_[c];
  rt_.start_task(t);
  cs.current = t;
  cs.cursor = 0;
  TaskNode& node = rt_.task(t);

  // First-touch placement: the scheduled core's socket claims the frames of
  // this task's dependence pages before anything translates them (RaCCD's
  // raccd_register below walks these pages through the TLB).
  if (mem_.lazy_mapping()) {
    const std::uint32_t socket = fabric_.topology().socket_of(c);
    for (const DepSpec& d : node.deps) {
      if (d.size == 0) continue;
      for (PageNum vp = page_of(d.addr); vp <= page_of(d.addr + d.size - 1); ++vp) {
        mem_.map_on_touch(vp, socket);
      }
    }
  }

  // Mode-specific setup (e.g. RaCCD's raccd_register per dependence), and
  // the per-access classification hook for this task, resolved once.
  const Cycle setup = backend_->on_task_start(c, node);
  cs.clock += setup;
  register_cycles_ += setup;
  cs.classify = backend_->classifier();

  // Functional execution records the access trace; replay charges timing.
  cs.trace.clear();
  TaskContext ctx(mem_, cs.trace);
  RACCD_ASSERT(node.body != nullptr, "task without a body");
  node.body(ctx);
}

void Machine::replay_record(CoreId c) {
  CoreState& cs = cores_[c];
  const AccessRecord& r = cs.trace.records()[cs.cursor++];
  cs.clock += r.compute_gap;
  cs.busy_cycles += r.compute_gap;
  accesses_replayed_ += r.repeat;

  // Address translation (VIPT-style: only walks cost extra time).
  const PageNum vpage = page_of(r.vaddr);
  if (mem_.lazy_mapping() && !mem_.page_table().mapped(vpage)) {
    // Accesses outside the declared dependence ranges first-touch here.
    mem_.map_on_touch(vpage, fabric_.topology().socket_of(c));
  }
  const auto tr = tlbs_[c].access(vpage, mem_.page_table());
  Cycle extra = 0;
  if (!tr.hit) extra += cfg_.timing.tlb_walk_cycles;
  const PAddr paddr = (tr.pframe << kPageShift) | page_offset(r.vaddr);
  const LineAddr line = line_of(paddr);

  // Classify the request on an L1 miss through the backend's cached view
  // (NCRT lookup / PT page class / always-NC; null view = always coherent).
  bool nc = false;
  const bool l1_resident = fabric_.l1(c).find(line) != nullptr;
  if (!l1_resident && cs.classify) {
    const AccessClass ac = cs.classify(c, r.vaddr, paddr, tr.pframe, cs.clock + extra);
    extra += ac.extra_cycles;
    nc = ac.nc;
  }

  const AccessOutcome out = fabric_.access(c, line, r.is_write != 0, nc, cs.clock + extra);
  Cycle stall = out.latency;
  if (!out.l1_hit && cfg_.timing.miss_overlap > 1.0) {
    const Cycle l1h = cfg_.fabric.l1_hit_cycles;
    stall = l1h + static_cast<Cycle>(static_cast<double>(out.latency - l1h) /
                                     cfg_.timing.miss_overlap);
  }
  Cycle total = extra + stall;
  if (r.repeat > 1) {
    fabric_.count_l1_repeat_hits(r.repeat - 1);
    total += static_cast<Cycle>(r.repeat - 1) * cfg_.fabric.l1_hit_cycles;
  }
  cs.clock += total;
  cs.busy_cycles += total;
  adr_.poll(cs.clock);
}

void Machine::finish_task(CoreId c) {
  CoreState& cs = cores_[c];
  if (trace_sink_) trace_sink_(rt_.task(cs.current), cs.trace);
  const Cycle trailing = cs.trace.trailing_compute();
  cs.clock += trailing;
  cs.busy_cycles += trailing;

  // Mode-specific teardown (RaCCD: NCRT clear + NC-line flush; WbNC:
  // whole-L1 writeback flush). Costs block the finishing core.
  const TaskEndOutcome teardown = backend_->on_task_end(c, cs.clock);
  cs.clock += teardown.cycles;
  invalidate_cycles_ += teardown.cycles;
  flushed_nc_lines_ += teardown.flushed_lines;
  flushed_nc_wbs_ += teardown.flushed_wbs;

  adr_.poll_all(cs.clock);

  // Wake-up phase (paper Fig. 3): notify dependent tasks.
  std::uint32_t resolved = 0;
  const bool new_ready = rt_.finish_task(cs.current, c, resolved);
  const Cycle wake_cost = cfg_.timing.wakeup_per_edge_cycles * resolved;
  cs.clock += wake_cost;
  wakeup_cycles_ += wake_cost;
  cs.current = kNoTask;
  if (new_ready) wake_sleepers(cs.clock);
}

void Machine::snapshot_stats(Cycle at, SimStats& s) const {
  // Fills a default-constructed SimStats with the machine's state as of
  // `at`. Counters are exact; the occupancy fields are *instantaneous*
  // (valid entries vs capacity, powered sets vs total right now) — the
  // quantity a Fig. 8-style occupancy-over-time trace plots. collect()
  // overwrites them with the run's time-weighted averages.
  s.mode = cfg_.mode;
  s.dir_ratio = cfg_.dir_ratio();
  s.adr_enabled = cfg_.adr.enabled;
  s.cycles = at;
  for (const auto& cs : cores_) s.busy_cycles += cs.busy_cycles;
  s.core_utilization = at == 0 ? 0.0
                               : static_cast<double>(s.busy_cycles) /
                                     (static_cast<double>(at) * cores_.size());
  s.fabric = fabric_.stats();
  s.noc = fabric_.mesh().stats();
  backend_->accumulate(s);  // mode-private stats (NCRT, PT classifier)
  for (const auto& tlb : tlbs_) {
    const TlbStats& t = tlb.stats();
    s.tlb.lookups += t.lookups;
    s.tlb.hits += t.hits;
    s.tlb.misses += t.misses;
    s.tlb.shootdowns += t.shootdowns;
    s.tlb.evictions += t.evictions;
  }
  s.adr = adr_.stats();
  s.tasks = rt_.stats().tasks_created;
  s.edges = rt_.stats().edges;
  s.accesses_replayed = accesses_replayed_;
  s.create_cycles = create_cycles_;
  s.schedule_cycles = schedule_cycles_;
  s.wakeup_cycles = wakeup_cycles_;
  s.register_cycles = register_cycles_;
  s.invalidate_cycles = invalidate_cycles_;
  s.flushed_nc_lines = flushed_nc_lines_;
  s.flushed_nc_wbs = flushed_nc_wbs_;
  s.blocks_touched = fabric_.classifier().touched_blocks();
  s.blocks_noncoherent = fabric_.classifier().noncoherent_blocks();
  s.noncoherent_block_fraction = fabric_.classifier().noncoherent_fraction();
  double occ_sum = 0.0, active_sum = 0.0;
  for (BankId b = 0; b < cfg_.fabric.cores; ++b) {
    const auto& d = fabric_.dir(b);
    occ_sum += static_cast<double>(d.valid_entries()) /
               (static_cast<double>(d.total_sets()) * d.ways());
    active_sum += static_cast<double>(d.active_sets()) / d.total_sets();
  }
  s.avg_dir_occupancy = occ_sum / cfg_.fabric.cores;
  s.avg_dir_active_frac = active_sum / cfg_.fabric.cores;
  s.dir_dyn_energy_pj = s.fabric.e_dir_pj;
  s.llc_dyn_energy_pj = s.fabric.e_llc_pj;
  s.noc_dyn_energy_pj = s.fabric.e_noc_pj;
  s.mem_dyn_energy_pj = s.fabric.e_mem_pj;
  s.l1_dyn_energy_pj = s.fabric.e_l1_pj;
  // Leakage over the powered entry-cycles accumulated so far.
  double leak = 0.0;
  for (BankId b = 0; b < cfg_.fabric.cores; ++b) {
    const double entry_cycles = fabric_.dir(b).active_integral();
    leak += fabric_.energy().dir_leakage_pj(1, 1) * entry_cycles;
  }
  s.dir_leak_energy_pj = leak;
}

SimStats Machine::collect() {
  RACCD_ASSERT(!collected_, "collect() must be called once");
  RACCD_ASSERT(rt_.all_finished(), "collect() before all tasks finished");
  collected_ = true;
  // Finalize before the last series point so integral-derived metrics
  // (e.g. energy.dir_leak_pj) include the tail window up to main_clock_.
  fabric_.finalize(main_clock_);
  if (sampler_) sampler_->finish(main_clock_);

  SimStats s;
  snapshot_stats(main_clock_, s);
  // End-of-run reports use the time-weighted averages (paper Fig. 8's
  // per-app numbers), not the final instantaneous occupancy.
  s.avg_dir_occupancy = fabric_.avg_dir_occupancy(main_clock_);
  s.avg_dir_active_frac = 0.0;
  if (main_clock_ > 0) {
    double active_sum = 0.0;
    for (BankId b = 0; b < cfg_.fabric.cores; ++b) {
      const auto& d = fabric_.dir(b);
      const double cap = static_cast<double>(d.total_sets()) * d.ways();
      active_sum += d.active_integral() / (static_cast<double>(main_clock_) * cap);
    }
    s.avg_dir_active_frac = active_sum / cfg_.fabric.cores;
  }
  return s;
}

}  // namespace raccd
