// Gauss: stationary heat diffusion, iterative Gauss-Seidel, 4-element stencil
// (paper Table II: 2D matrix N^2 = 2359296, 10 iterations).
//
// In-place update over contiguous row blocks. Block b of iteration k depends
// on: its own rows (inout, chaining iterations), the halo row above (in —
// written by block b-1 of the *same* iteration) and the halo row below (in —
// still holding block b+1's values from iteration k-1). The dependence
// registry derives the classic Gauss-Seidel wavefront from these ranges.
#include <algorithm>
#include <string>

#include "raccd/apps/registry.hpp"
#include "raccd/apps/stencil_common.hpp"
#include "raccd/common/format.hpp"

namespace raccd::apps {
namespace {

struct GaussParams {
  std::uint32_t n;
  std::uint32_t iters;
  std::uint32_t blocks;
};

[[nodiscard]] GaussParams params_for(const AppConfig& cfg) {
  GaussParams p{512, 10, 32};
  switch (cfg.size) {
    case SizeClass::kTiny: p = {64, 3, 8}; break;
    case SizeClass::kSmall: p = {512, 10, 32}; break;
    case SizeClass::kMedium: p = {1024, 10, 48}; break;
    case SizeClass::kPaper: p = {1536, 10, 64}; break;
    case SizeClass::kLarge: p = {3072, 10, 128}; break;
  }
  p.n = cfg.params.get_u32("n", p.n);
  p.iters = cfg.params.get_u32("iters", p.iters);
  p.blocks = std::min(cfg.params.get_u32("blocks", p.blocks), p.n);
  return p;
}

class GaussApp final : public App {
 public:
  explicit GaussApp(const AppConfig& cfg) : p_(params_for(cfg)), seed_(cfg.seed) {}

  [[nodiscard]] std::string_view name() const override { return "gauss"; }
  [[nodiscard]] std::string problem() const override {
    return strprintf("2D matrix N^2=%u, %u iters, %u row blocks (in-place)", p_.n * p_.n,
                     p_.iters, p_.blocks);
  }

  void run(Machine& m) override {
    const std::uint32_t n = p_.n;
    grid_ = m.mem().alloc_array<float>(static_cast<std::uint64_t>(n) * n, "gauss.grid");
    Rng rng(seed_);
    init_grid(m.mem(), grid_, n, rng);

    const RowBlocks rb{n, p_.blocks};
    const VAddr g = grid_;
    for (std::uint32_t iter = 0; iter < p_.iters; ++iter) {
      for (std::uint32_t blk = 0; blk < p_.blocks; ++blk) {
        const std::uint32_t r0 = rb.row0(blk);
        const std::uint32_t r1 = rb.row1(blk);
        TaskDesc t;
        t.name = strprintf("gauss(i%u,b%u)", iter, blk);
        t.deps.push_back(DepSpec{g + static_cast<VAddr>(r0) * n * sizeof(float),
                                 static_cast<std::uint64_t>(r1 - r0) * n * sizeof(float),
                                 DepKind::kInout});
        if (r0 > 0) {
          t.deps.push_back(DepSpec{g + static_cast<VAddr>(r0 - 1) * n * sizeof(float),
                                   static_cast<std::uint64_t>(n) * sizeof(float),
                                   DepKind::kIn});
        }
        if (r1 < n) {
          t.deps.push_back(DepSpec{g + static_cast<VAddr>(r1) * n * sizeof(float),
                                   static_cast<std::uint64_t>(n) * sizeof(float),
                                   DepKind::kIn});
        }
        t.body = [g, n, r0, r1](TaskContext& ctx) {
          const auto at = [g, n](std::uint32_t i, std::uint32_t j) {
            return g + (static_cast<VAddr>(i) * n + j) * sizeof(float);
          };
          for (std::uint32_t i = std::max(r0, 1u); i < std::min(r1, n - 1); ++i) {
            for (std::uint32_t j = 1; j < n - 1; ++j) {
              const float up = ctx.load<float>(at(i - 1, j));
              const float left = ctx.load<float>(at(i, j - 1));
              const float right = ctx.load<float>(at(i, j + 1));
              const float down = ctx.load<float>(at(i + 1, j));
              ctx.compute(4);
              ctx.store<float>(at(i, j), 0.25f * (up + left + right + down));
            }
          }
        };
        m.spawn(std::move(t));
      }
    }
    m.taskwait();
  }

  [[nodiscard]] std::string verify(Machine& m) override {
    const std::uint32_t n = p_.n;
    Rng rng(seed_);
    std::vector<float> ref(static_cast<std::size_t>(n) * n);
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 0; j < n; ++j) {
        const bool boundary = i == 0 || j == 0 || i == n - 1 || j == n - 1;
        ref[static_cast<std::size_t>(i) * n + j] =
            boundary ? 1.0f : rng.next_float(0.0f, 1.0f);
      }
    }
    // The dependences serialize blocks so the result equals sequential
    // row-major Gauss-Seidel.
    for (std::uint32_t iter = 0; iter < p_.iters; ++iter) {
      for (std::uint32_t i = 1; i < n - 1; ++i) {
        for (std::uint32_t j = 1; j < n - 1; ++j) {
          const std::size_t idx = static_cast<std::size_t>(i) * n + j;
          ref[idx] = 0.25f * (ref[idx - n] + ref[idx - 1] + ref[idx + 1] + ref[idx + n]);
        }
      }
    }
    const std::vector<float> got = read_grid(m.mem(), grid_, n);
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i] != ref[i]) {
        return strprintf("gauss mismatch at %zu: got %g want %g", i,
                         static_cast<double>(got[i]), static_cast<double>(ref[i]));
      }
    }
    return {};
  }

 private:
  GaussParams p_;
  std::uint64_t seed_;
  VAddr grid_ = 0;
};

const WorkloadRegistrar kRegistrar{{
    "gauss",
    "in-place Gauss-Seidel stencil with wavefront dependences (paper Table II)",
    "paper",
    ParamSchema()
        .add_int("n", 512, "grid edge (N x N floats)", 8, 8192)
        .add_int("iters", 10, "Gauss-Seidel iterations", 1, 1024)
        .add_int("blocks", 32, "row blocks per iteration (clamped to n)", 1, 8192),
    [](const AppConfig& cfg) -> std::unique_ptr<App> {
      return std::make_unique<GaussApp>(cfg);
    },
}};

}  // namespace
}  // namespace raccd::apps
