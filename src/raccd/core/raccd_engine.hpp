// The RaCCD runtime/architecture interface (paper §III-A/B/C.2):
//
//  * raccd_register(start, size): iterate the virtual pages of a task
//    dependence region, translate each through the core's TLB (paying walks
//    on misses), collapse contiguous physical pages into byte-precise
//    physical ranges (paper Fig. 5), insert them into the per-core NCRT.
//  * raccd_invalidate(): clear the NCRT; the caller additionally triggers
//    the L1 NC-line flush through the fabric (Fabric::flush_nc_lines).
//
// The engine owns one NCRT per core and models the instruction latencies
// cycle-by-cycle as the paper does (§IV-A: register latency depends on the
// iterative translation; invalidate latency on the number of flushed lines).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "raccd/common/types.hpp"
#include "raccd/core/ncrt.hpp"
#include "raccd/mem/page_table.hpp"
#include "raccd/tlb/tlb.hpp"

namespace raccd {

struct RaccdEngineConfig {
  std::uint32_t ncrt_entries = 32;
  Cycle instr_overhead_cycles = 4;     ///< issue/commit cost of either instruction
  Cycle per_page_lookup_cycles = 1;    ///< one TLB access per page of the region
  Cycle tlb_walk_cycles = 50;          ///< page walk on TLB miss
  Cycle per_insert_cycles = 1;         ///< one NCRT write per collapsed range
};

struct RegisterOutcome {
  Cycle cycles = 0;
  std::uint32_t pages_translated = 0;
  std::uint32_t ranges_inserted = 0;
  std::uint32_t tlb_misses = 0;
  bool overflowed = false;  ///< at least one range rejected (stays coherent)
};

class RaccdEngine {
 public:
  RaccdEngine(std::uint32_t cores, const RaccdEngineConfig& cfg);

  /// Execute raccd_register(va, size) on core `c`.
  RegisterOutcome register_region(CoreId c, VAddr va, std::uint64_t size, Tlb& tlb,
                                  const PageTable& pt);

  /// Execute the NCRT-clearing part of raccd_invalidate on core `c`;
  /// returns the instruction overhead (the cache walk cost is added by the
  /// fabric flush the caller performs).
  Cycle invalidate(CoreId c);

  /// NCRT consultation on an L1 miss (1-cycle cost charged by the caller).
  [[nodiscard]] bool is_noncoherent(CoreId c, PAddr pa) noexcept {
    return ncrt(c).lookup(pa);
  }

  [[nodiscard]] Ncrt& ncrt(CoreId c) noexcept { return *ncrts_[c]; }
  [[nodiscard]] const Ncrt& ncrt(CoreId c) const noexcept { return *ncrts_[c]; }
  [[nodiscard]] const RaccdEngineConfig& config() const noexcept { return cfg_; }

  /// Aggregate NCRT stats across cores.
  [[nodiscard]] NcrtStats total_stats() const noexcept;

 private:
  RaccdEngineConfig cfg_;
  std::vector<std::unique_ptr<Ncrt>> ncrts_;
};

}  // namespace raccd
