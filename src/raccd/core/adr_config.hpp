// ADR configuration and statistics, split from adr.hpp so stats-only
// consumers (SimConfig, SimStats, report) don't pull in the controller and
// the full fabric it drives.
#pragma once

#include <cstdint>

#include "raccd/common/types.hpp"

namespace raccd {

struct AdrConfig {
  bool enabled = false;
  double theta_inc = 0.80;
  double theta_dec = 0.20;
  /// Lower bound on powered sets, as a divisor of the configured size
  /// (256 == the paper's most extreme static configuration, 1:256).
  std::uint32_t min_sets_divisor = 256;
};

struct AdrStats {
  std::uint64_t polls = 0;
  std::uint64_t grows = 0;
  std::uint64_t shrinks = 0;
  std::uint64_t entries_moved = 0;
  std::uint64_t entries_displaced = 0;
  Cycle blocked_cycles = 0;
};

}  // namespace raccd
