// Work-stealing thread pool for the experiment harness.
//
// The shape follows the task-parallel runtimes the paper builds on (BDDT /
// BDDT-SCC schedule independent task bodies over per-core queues with
// stealing): each worker owns a deque, pops its own work LIFO (newest first,
// warm caches) and steals FIFO from a victim (oldest first, the classic
// Cilk/BDDT discipline that steals the largest remaining chunk of a
// submission burst). Idle workers park on a condition variable instead of
// spinning — sweep tasks are whole simulations, so wakeups are rare and the
// harness must not burn host cores that the simulations themselves want.
//
// Queue operations take a single pool mutex. That is deliberate, not lazy:
// every task here is a complete simulation (milliseconds to minutes of host
// time), so push/pop cost is noise, while one lock keeps the
// park/steal/drain transitions trivially race-free — this type is on the
// ThreadSanitizer CI job and must stay boring under it. The per-worker
// *deques* (not a shared run queue) are what preserve the LIFO/FIFO
// discipline and keep submission bursts spread across workers.
//
// Error contract: the first exception a task throws is captured; wait()
// rethrows it on the submitting thread (after all other tasks finished or
// were cancelled). cancel() drops queued-but-unstarted tasks; tasks already
// running always drain.
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

namespace raccd {

class WorkStealPool {
 public:
  using Task = std::function<void()>;

  /// Spawn `workers` threads (>= 1; 0 is clamped to 1).
  explicit WorkStealPool(unsigned workers);
  /// Cancels queued work, drains in-flight tasks, joins all workers.
  ~WorkStealPool();

  WorkStealPool(const WorkStealPool&) = delete;
  WorkStealPool& operator=(const WorkStealPool&) = delete;

  /// Enqueue a task. Round-robin across the per-worker deques so a burst of
  /// submissions is spread before any stealing is needed. `worker_hint`
  /// pins the task to a specific worker's deque (tests use this to force
  /// steals); pass kAnyWorker for the default placement.
  static constexpr unsigned kAnyWorker = ~0u;
  void submit(Task task, unsigned worker_hint = kAnyWorker);

  /// Block until every submitted task has finished (or was cancelled).
  /// Rethrows the first exception any task threw, if any.
  void wait();

  /// Drop all queued-but-unstarted tasks; in-flight tasks drain normally.
  void cancel();

  [[nodiscard]] unsigned worker_count() const noexcept {
    return static_cast<unsigned>(deques_.size());
  }
  /// Tasks executed by a worker that did not own their deque (test/telemetry).
  [[nodiscard]] std::uint64_t steal_count() const;
  /// Index of the pool worker running the calling thread, or kAnyWorker when
  /// called from outside the pool (progress reporting uses this).
  [[nodiscard]] unsigned current_worker() const noexcept;

 private:
  void worker_loop(unsigned self);
  /// Pop under lock: own deque back (LIFO), then scan victims front (FIFO).
  [[nodiscard]] bool try_pop_locked(unsigned self, Task& out);

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers park here
  std::condition_variable idle_cv_;  ///< wait() parks here
  std::vector<std::deque<Task>> deques_;
  std::vector<std::thread> threads_;
  std::size_t unfinished_ = 0;  ///< submitted and not yet completed/cancelled
  std::uint64_t steals_ = 0;
  unsigned next_worker_ = 0;  ///< round-robin submit cursor
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace raccd
