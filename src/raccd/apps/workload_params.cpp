#include "raccd/apps/workload_params.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "raccd/common/format.hpp"

namespace raccd {

bool parse_int_text(std::string_view text, std::int64_t& out) {
  if (text.empty()) return false;
  const std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end == buf.c_str() || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_double_text(std::string_view text, double& out) {
  if (text.empty()) return false;
  const std::string buf(text);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end == buf.c_str() || *end != '\0') return false;
  out = v;
  return true;
}

std::string WorkloadParams::parse(std::string_view text, WorkloadParams& out) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;  // tolerate "a=1,,b=2" and trailing commas
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return strprintf("malformed parameter '%.*s' (expected key=value)",
                       static_cast<int>(item.size()), item.data());
    }
    out.set(std::string(item.substr(0, eq)), std::string(item.substr(eq + 1)));
  }
  return {};
}

void WorkloadParams::set(std::string key, std::string value) {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, const std::string& k) { return e.key < k; });
  if (it != entries_.end() && it->key == key) {
    it->value = std::move(value);
    return;
  }
  entries_.insert(it, Entry{std::move(key), std::move(value)});
}

bool WorkloadParams::has(std::string_view key) const noexcept {
  return raw(key) != nullptr;
}

const std::string* WorkloadParams::raw(std::string_view key) const noexcept {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, std::string_view k) { return e.key < k; });
  if (it != entries_.end() && it->key == key) return &it->value;
  return nullptr;
}

std::int64_t WorkloadParams::get_int(std::string_view key, std::int64_t fallback) const {
  const std::string* v = raw(key);
  std::int64_t out = 0;
  if (v != nullptr && parse_int_text(*v, out)) return out;
  return fallback;
}

std::uint32_t WorkloadParams::get_u32(std::string_view key, std::uint32_t fallback) const {
  const std::int64_t v = get_int(key, static_cast<std::int64_t>(fallback));
  if (v < 0 || v > 0xffffffffll) return fallback;
  return static_cast<std::uint32_t>(v);
}

double WorkloadParams::get_double(std::string_view key, double fallback) const {
  const std::string* v = raw(key);
  double out = 0.0;
  if (v != nullptr && parse_double_text(*v, out)) return out;
  return fallback;
}

std::string WorkloadParams::get_string(std::string_view key,
                                       std::string_view fallback) const {
  const std::string* v = raw(key);
  return v != nullptr ? *v : std::string(fallback);
}

std::string WorkloadParams::canonical() const {
  std::string out;
  for (const Entry& e : entries_) {
    if (!out.empty()) out += ',';
    out += e.key;
    out += '=';
    out += e.value;
  }
  return out;
}

ParamSchema& ParamSchema::add_int(std::string key, std::int64_t small_default,
                                  std::string help, std::int64_t min, std::int64_t max) {
  ParamSpec s;
  s.key = std::move(key);
  s.type = ParamType::kInt;
  s.default_text = strprintf("%lld", static_cast<long long>(small_default));
  s.help = std::move(help);
  s.min_int = min;
  s.max_int = max;
  specs_.push_back(std::move(s));
  return *this;
}

ParamSchema& ParamSchema::add_double(std::string key, double small_default,
                                     std::string help, double min, double max) {
  ParamSpec s;
  s.key = std::move(key);
  s.type = ParamType::kDouble;
  s.default_text = strprintf("%g", small_default);
  s.help = std::move(help);
  s.min_double = min;
  s.max_double = max;
  specs_.push_back(std::move(s));
  return *this;
}

ParamSchema& ParamSchema::add_string(std::string key, std::string small_default,
                                     std::string help) {
  ParamSpec s;
  s.key = std::move(key);
  s.type = ParamType::kString;
  s.default_text = std::move(small_default);
  s.help = std::move(help);
  specs_.push_back(std::move(s));
  return *this;
}

ParamSchema& ParamSchema::add_enum(std::string key, std::string small_default,
                                   std::string help, std::vector<std::string> choices) {
  add_string(std::move(key), std::move(small_default), std::move(help));
  specs_.back().choices = std::move(choices);
  return *this;
}

const ParamSpec* ParamSchema::find(std::string_view key) const noexcept {
  for (const ParamSpec& s : specs_) {
    if (s.key == key) return &s;
  }
  return nullptr;
}

std::string ParamSchema::validate(const WorkloadParams& p) const {
  for (const auto& e : p.entries()) {
    const ParamSpec* spec = find(e.key);
    if (spec == nullptr) {
      std::string known;
      for (const ParamSpec& s : specs_) {
        if (!known.empty()) known += ", ";
        known += s.key;
      }
      return strprintf("unknown parameter '%s' (valid: %s)", e.key.c_str(),
                       known.empty() ? "none — this workload has no parameters"
                                     : known.c_str());
    }
    switch (spec->type) {
      case ParamType::kInt: {
        std::int64_t v = 0;
        if (!parse_int_text(e.value, v)) {
          return strprintf("parameter '%s': '%s' is not an integer", e.key.c_str(),
                           e.value.c_str());
        }
        if (!(spec->min_int == 0 && spec->max_int == 0) &&
            (v < spec->min_int || v > spec->max_int)) {
          return strprintf("parameter '%s': %lld out of range [%lld, %lld]",
                           e.key.c_str(), static_cast<long long>(v),
                           static_cast<long long>(spec->min_int),
                           static_cast<long long>(spec->max_int));
        }
        break;
      }
      case ParamType::kDouble: {
        double v = 0.0;
        if (!parse_double_text(e.value, v)) {
          return strprintf("parameter '%s': '%s' is not a number", e.key.c_str(),
                           e.value.c_str());
        }
        if (!(spec->min_double == 0.0 && spec->max_double == 0.0) &&
            (v < spec->min_double || v > spec->max_double)) {
          return strprintf("parameter '%s': %g out of range [%g, %g]", e.key.c_str(), v,
                           spec->min_double, spec->max_double);
        }
        break;
      }
      case ParamType::kString: {
        if (!spec->choices.empty() &&
            std::find(spec->choices.begin(), spec->choices.end(), e.value) ==
                spec->choices.end()) {
          std::string allowed;
          for (const std::string& c : spec->choices) {
            if (!allowed.empty()) allowed += "|";
            allowed += c;
          }
          return strprintf("parameter '%s': '%s' is not one of %s", e.key.c_str(),
                           e.value.c_str(), allowed.c_str());
        }
        break;
      }
    }
  }
  return {};
}

WorkloadParams ParamSchema::resolve(const WorkloadParams& overrides) const {
  WorkloadParams out;
  for (const ParamSpec& s : specs_) {
    const std::string* v = overrides.raw(s.key);
    out.set(s.key, v != nullptr ? *v : s.default_text);
  }
  return out;
}

std::string ParamSchema::describe(std::string_view indent) const {
  std::string out;
  for (const ParamSpec& s : specs_) {
    out += indent;
    out += strprintf("%s=%s (%s)  %s", s.key.c_str(), s.default_text.c_str(),
                     to_string(s.type), s.help.c_str());
    if (s.type == ParamType::kInt && !(s.min_int == 0 && s.max_int == 0)) {
      out += strprintf(" [%lld..%lld]", static_cast<long long>(s.min_int),
                       static_cast<long long>(s.max_int));
    } else if (s.type == ParamType::kDouble &&
               !(s.min_double == 0.0 && s.max_double == 0.0)) {
      out += strprintf(" [%g..%g]", s.min_double, s.max_double);
    } else if (s.type == ParamType::kString && !s.choices.empty()) {
      out += " [";
      for (std::size_t i = 0; i < s.choices.size(); ++i) {
        if (i != 0) out += '|';
        out += s.choices[i];
      }
      out += ']';
    }
    out += '\n';
  }
  return out;
}

}  // namespace raccd
