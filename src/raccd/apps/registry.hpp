// Self-registering workload registry (the Workload SDK's front door).
//
// Each workload translation unit declares a WorkloadInfo — name, one-line
// description, family, typed parameter schema, factory — and registers it at
// static-init time through a WorkloadRegistrar object, so adding a workload
// is one new .cpp file and zero edits elsewhere (the apps library is linked
// as CMake OBJECT files precisely so the linker cannot drop an unreferenced
// registration). Lookup failures return nullptr with an error message that
// lists every registered workload; parameter errors name the valid knobs.
//
// Workload references combine a name with overrides: "jacobi:n=512,iters=16"
// — parse_workload_ref splits them, the schema validates them.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "raccd/apps/app.hpp"
#include "raccd/apps/workload_params.hpp"

namespace raccd {

struct WorkloadInfo {
  std::string name;
  std::string description;
  /// Coarse grouping used by CI smoke enumeration and `simulate --list`:
  /// "paper" (Table II benchmarks), "synthetic", "trace".
  std::string family;
  ParamSchema schema;
  std::function<std::unique_ptr<App>(const AppConfig&)> factory;
};

class WorkloadRegistry {
 public:
  /// Process-wide instance (function-local static; safe during static init).
  [[nodiscard]] static WorkloadRegistry& instance();

  /// Register a workload. Returns false (and changes nothing) when the name
  /// is already taken or the info is incomplete (empty name / null factory).
  bool add(WorkloadInfo info);

  [[nodiscard]] const WorkloadInfo* find(std::string_view name) const;

  /// All names, sorted; optionally restricted to one family.
  [[nodiscard]] std::vector<std::string> names(std::string_view family = {}) const;
  /// Distinct families, sorted.
  [[nodiscard]] std::vector<std::string> families() const;

  /// Validate `cfg.params` against the schema and construct the workload.
  /// On failure returns nullptr and, when `error` is non-null, an
  /// explanation (unknown names list all registered workloads).
  [[nodiscard]] std::unique_ptr<App> create(std::string_view name, const AppConfig& cfg,
                                            std::string* error = nullptr) const;

  /// "unknown workload 'x' (registered: a, b, c, ...)".
  [[nodiscard]] std::string unknown_name_message(std::string_view name) const;

  /// The subset of `params` whose keys `name`'s schema declares — how
  /// grid-wide --set overrides apply to multi-workload grids without
  /// tripping schema validation on workloads that lack a knob. Unknown
  /// names pass `params` through (the error surfaces at creation).
  [[nodiscard]] WorkloadParams supported_params(std::string_view name,
                                               const WorkloadParams& params) const;

 private:
  std::vector<WorkloadInfo> workloads_;  // sorted by name
};

/// Static-init registration hook: `const WorkloadRegistrar reg{{...}};`.
struct WorkloadRegistrar {
  explicit WorkloadRegistrar(WorkloadInfo info) {
    WorkloadRegistry::instance().add(std::move(info));
  }
};

/// Split "name[:k=v,...]" into name + params. Returns "" or an error.
[[nodiscard]] std::string parse_workload_ref(std::string_view ref, std::string& name,
                                             WorkloadParams& params);

/// Render name + params back to the "name[:k=v,...]" form.
[[nodiscard]] std::string format_workload_ref(std::string_view name,
                                              const WorkloadParams& params);

}  // namespace raccd
