// Deterministic, seedable PRNG used everywhere randomness is needed
// (workload generation, fragmented page allocation, property tests).
// xoshiro256** seeded through SplitMix64; never std::rand, never
// std::random_device, so simulations replay bit-identically.
#pragma once

#include <cstdint>

namespace raccd {

class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) noexcept { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) noexcept {
    // SplitMix64 to expand the seed into the xoshiro state.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = next();
  }

  constexpr std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection-free variant is overkill here; the
    // simple 128-bit multiply keeps bias below 2^-64 which is fine for
    // workload generation.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  constexpr float next_float(float lo, float hi) noexcept {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  constexpr bool next_bool(double p_true) noexcept { return next_double() < p_true; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace raccd
