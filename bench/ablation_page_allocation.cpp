// Ablation (beyond the paper): physical page allocation policy. The paper
// relies on Linux mapping contiguous virtual pages to contiguous frames
// (§III-C.2), which lets raccd_register collapse each dependence region into
// ~1 NCRT entry. Fragmented physical memory defeats the collapsing: more
// NCRT inserts, overflows, and lost coverage.
#include <cstdio>

#include "bench_common.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  // One list drives both the grid and the table stride, so they cannot drift.
  const std::vector<AllocPolicy> policies{AllocPolicy::kContiguous,
                                          AllocPolicy::kFragmented};
  const auto apps = paper_app_names();
  const auto results = bench::run_logged(
      Grid()
          .paper_apps()
          .set_params(opts.params)
          .size(opts.size)
          .mode(CohMode::kRaCCD)
          .allocs(policies)
          .paper_machine(opts.paper_machine)
          .specs(),
      opts);

  std::printf("Ablation — physical allocation policy under RaCCD\n");
  TextTable table({"app", "policy", "NCRT inserts", "overflows", "NC blocks %",
                   "register cycles", "norm.cycles"});
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const double base = static_cast<double>(results[a * policies.size()].cycles);
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const SimStats& s = results[a * policies.size() + p];
      table.add_row({apps[a], to_string(policies[p]),
                     format_count(s.ncrt.inserts), format_count(s.ncrt.overflows),
                     strprintf("%.1f", 100.0 * metric_value(s, "blocks.nc_fraction")),
                     format_count(s.register_cycles),
                     strprintf("%.3f", static_cast<double>(s.cycles) / base)});
    }
  }
  table.print();
  table.write_csv("results/ablation_page_allocation.csv");
  return 0;
}
