#include "raccd/apps/trace_capture.hpp"

#include <algorithm>

#include "raccd/apps/registry.hpp"
#include "raccd/common/format.hpp"

namespace raccd {

TraceCapture::~TraceCapture() { m_.set_trace_sink({}); }

TraceCapture::TraceCapture(Machine& m) : m_(m) {
  m_.set_trace_sink([this](const TaskNode& node, const AccessTrace& trace) {
    RawTask t;
    t.id = node.id;
    t.name = node.name;
    t.deps = node.deps;
    t.records = trace.records();
    t.trailing_compute = trace.trailing_compute();
    tasks_.push_back(std::move(t));
  });
}

std::string TraceCapture::finish(TraceFile& out) {
  out = TraceFile{};
  const auto& allocs = m_.mem().allocations();
  for (std::size_t i = 0; i < allocs.size(); ++i) {
    TraceRegion r;
    r.name = allocs[i].label.empty() ? strprintf("region%zu", i) : allocs[i].label;
    // Labels become whitespace-free tokens in the text format.
    std::replace(r.name.begin(), r.name.end(), ' ', '_');
    r.bytes = allocs[i].bytes;
    out.regions.push_back(std::move(r));
  }
  const auto locate = [&allocs](VAddr va, std::uint32_t& region,
                                std::uint64_t& offset) {
    for (std::size_t i = 0; i < allocs.size(); ++i) {
      if (va >= allocs[i].base && va < allocs[i].base + allocs[i].bytes) {
        region = static_cast<std::uint32_t>(i);
        offset = va - allocs[i].base;
        return true;
      }
    }
    return false;
  };

  std::sort(tasks_.begin(), tasks_.end(),
            [](const RawTask& a, const RawTask& b) { return a.id < b.id; });
  for (const RawTask& rt : tasks_) {
    TraceTask t;
    t.name = rt.name;
    std::replace(t.name.begin(), t.name.end(), ' ', '_');
    t.trailing_compute = rt.trailing_compute;
    for (const DepSpec& d : rt.deps) {
      TraceDep td;
      if (!locate(d.addr, td.region, td.offset)) {
        return strprintf("dependence of task '%s' outside any named allocation",
                         rt.name.c_str());
      }
      td.size = d.size;
      td.kind = d.kind;
      if (td.offset + td.size > out.regions[td.region].bytes) {
        return strprintf("dependence of task '%s' spans allocations", rt.name.c_str());
      }
      t.deps.push_back(td);
    }
    for (const AccessRecord& r : rt.records) {
      TraceAccess a;
      if (!locate(r.vaddr, a.region, a.offset)) {
        return strprintf("access of task '%s' outside any named allocation",
                         rt.name.c_str());
      }
      a.size = r.size;
      a.repeat = r.repeat;
      a.is_write = r.is_write != 0;
      a.compute_gap = r.compute_gap;
      t.accesses.push_back(a);
    }
    out.tasks.push_back(std::move(t));
  }
  return {};
}

std::string capture_workload_trace(const std::string& workload_ref, const AppConfig& cfg,
                                   const SimConfig& mcfg, TraceFile& out) {
  std::string name;
  AppConfig acfg = cfg;
  std::string err = parse_workload_ref(workload_ref, name, acfg.params);
  if (!err.empty()) return err;
  auto app = WorkloadRegistry::instance().create(name, acfg, &err);
  if (app == nullptr) return err;
  Machine machine(mcfg);
  TraceCapture capture(machine);
  app->run(machine);
  err = app->verify(machine);
  if (!err.empty()) return strprintf("workload failed verification: %s", err.c_str());
  return capture.finish(out);
}

}  // namespace raccd
