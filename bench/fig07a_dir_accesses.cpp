// Paper Fig. 7a: directory accesses by directory size, normalized to the
// FullCoh 1:1 configuration of each benchmark.
//
// Paper reference points: at 1:1 RaCCD needs 6-37% of FullCoh's accesses
// (26% on average) except JPEG (95%); RaCCD keeps a 74-77% advantage over
// FullCoh across all sizes and 38-53% over PT.
#include "bench_common.hpp"

using namespace raccd;
using namespace raccd::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const PaperGrid g = run_grid(opts);
  print_figure(
      g, "Fig. 7a — Directory accesses (normalized to FullCoh 1:1)",
      "normalized directory accesses",
      [](const SimStats& s, const SimStats& base) {
        return metric_value(s, "fabric.dir_accesses") /
               metric_value(base, "fabric.dir_accesses");
      },
      "results/fig07a_dir_accesses.csv");
  std::printf("paper: RaCCD ~0.26 of FullCoh at 1:1 on average; JPEG is the outlier\n");
  return 0;
}
