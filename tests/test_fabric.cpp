// Coherent-path protocol tests: MESI state transitions, directory tracking,
// inclusivity recalls, writebacks, and the value-version checker.
#include <gtest/gtest.h>

#include "fabric_test_util.hpp"

#include <algorithm>

#include "raccd/common/bits.hpp"
#include "raccd/common/rng.hpp"

namespace raccd {
namespace {

using testutil::line_in_bank;
using testutil::small_fabric_config;

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : checker_(true), fabric_(small_fabric_config(), &checker_) {}

  AccessOutcome load(CoreId c, LineAddr l) { return fabric_.access(c, l, false, false, t_++); }
  AccessOutcome store(CoreId c, LineAddr l) { return fabric_.access(c, l, true, false, t_++); }

  void expect_clean_scan() {
    const auto violations = CoherenceChecker::scan(fabric_);
    for (const auto& v : violations) ADD_FAILURE() << v;
  }

  CoherenceChecker checker_;
  Fabric fabric_;
  Cycle t_ = 0;
};

TEST_F(FabricTest, ColdLoadGrantsExclusive) {
  const LineAddr l = line_in_bank(1, 3);
  const auto out = load(0, l);
  EXPECT_FALSE(out.l1_hit);
  EXPECT_FALSE(out.llc_hit);
  const L1Line* line = fabric_.l1(0).find(l);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->coh, Mesi::kExclusive);
  const DirEntry* e = fabric_.dir(1).find(l);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->excl, 0u);
  EXPECT_EQ(e->sharers, 1u);
  EXPECT_EQ(fabric_.stats().mem_reads, 1u);
  expect_clean_scan();
}

TEST_F(FabricTest, SecondReaderDowngradesToShared) {
  const LineAddr l = line_in_bank(0, 5);
  load(0, l);
  const auto out = load(1, l);
  EXPECT_TRUE(out.llc_hit);
  EXPECT_EQ(fabric_.l1(0).find(l)->coh, Mesi::kShared);
  EXPECT_EQ(fabric_.l1(1).find(l)->coh, Mesi::kShared);
  const DirEntry* e = fabric_.dir(0).find(l);
  EXPECT_EQ(e->excl, kNoCore);
  EXPECT_EQ(e->sharers, 0b11u);
  EXPECT_EQ(fabric_.stats().owner_probes, 1u);
  EXPECT_EQ(fabric_.stats().mem_reads, 1u);  // served from LLC
  expect_clean_scan();
}

TEST_F(FabricTest, StoreHitOnExclusiveSilentlyUpgrades) {
  const LineAddr l = line_in_bank(2, 9);
  load(0, l);
  const auto out = store(0, l);
  EXPECT_TRUE(out.l1_hit);
  EXPECT_EQ(fabric_.l1(0).find(l)->coh, Mesi::kModified);
  EXPECT_TRUE(fabric_.l1(0).find(l)->dirty);
  EXPECT_EQ(fabric_.stats().upgrades, 0u);  // silent E->M, no dir traffic
  expect_clean_scan();
}

TEST_F(FabricTest, StoreHitOnSharedUpgradesAndInvalidates) {
  const LineAddr l = line_in_bank(3, 1);
  load(0, l);
  load(1, l);
  load(2, l);
  const auto out = store(1, l);
  EXPECT_TRUE(out.l1_hit);
  EXPECT_EQ(fabric_.stats().upgrades, 1u);
  EXPECT_EQ(fabric_.l1(1).find(l)->coh, Mesi::kModified);
  EXPECT_EQ(fabric_.l1(0).find(l), nullptr);
  EXPECT_EQ(fabric_.l1(2).find(l), nullptr);
  const DirEntry* e = fabric_.dir(3).find(l);
  EXPECT_EQ(e->excl, 1u);
  EXPECT_EQ(e->sharers, 0b10u);
  expect_clean_scan();
}

TEST_F(FabricTest, ReadAfterRemoteStoreSeesLatestData) {
  const LineAddr l = line_in_bank(0, 7);
  store(0, l);   // M at core 0
  load(1, l);    // probe owner: writeback + downgrade
  EXPECT_EQ(fabric_.l1(0).find(l)->coh, Mesi::kShared);
  EXPECT_FALSE(fabric_.l1(0).find(l)->dirty);
  EXPECT_EQ(fabric_.l1(1).find(l)->coh, Mesi::kShared);
  EXPECT_GE(fabric_.stats().l1_wb_coh, 1u);
  // Checker validated that core 1 observed core 0's store version.
  EXPECT_GE(checker_.loads_checked(), 1u);
  EXPECT_EQ(checker_.violations(), 0u);
  expect_clean_scan();
}

TEST_F(FabricTest, WriteAfterRemoteWriteTransfersOwnership) {
  const LineAddr l = line_in_bank(1, 8);
  store(0, l);
  store(2, l);
  EXPECT_EQ(fabric_.l1(0).find(l), nullptr);
  EXPECT_EQ(fabric_.l1(2).find(l)->coh, Mesi::kModified);
  const DirEntry* e = fabric_.dir(1).find(l);
  EXPECT_EQ(e->excl, 2u);
  load(3, l);
  EXPECT_EQ(checker_.violations(), 0u);
  expect_clean_scan();
}

TEST_F(FabricTest, L1ConflictEvictionWritesBackDirty) {
  // Two lines in the same L1 set (8 sets) and same home bank, plus a third
  // to force eviction of a dirty line.
  const LineAddr a = line_in_bank(0, 0);       // set 0 of L1 (line 0)
  const LineAddr b = line_in_bank(0, 8 * 1);   // 32 -> set 0
  const LineAddr c = line_in_bank(0, 8 * 2);   // 64 -> set 0
  ASSERT_EQ(fabric_.l1(0).set_of(a), fabric_.l1(0).set_of(b));
  ASSERT_EQ(fabric_.l1(0).set_of(a), fabric_.l1(0).set_of(c));
  store(0, a);
  load(0, b);
  load(0, c);  // evicts one of a/b
  EXPECT_EQ(fabric_.stats().l1_evictions, 1u);
  // If the dirty line a was evicted, its data must be in the LLC now.
  if (fabric_.l1(0).find(a) == nullptr) {
    EXPECT_GE(fabric_.stats().l1_wb_coh, 1u);
    const auto* ll = fabric_.llc(0).find(a);
    ASSERT_NE(ll, nullptr);
    EXPECT_TRUE(ll->dirty);
  }
  // Reading a again from another core must see the stored version.
  load(1, a);
  EXPECT_EQ(checker_.violations(), 0u);
  expect_clean_scan();
}

TEST_F(FabricTest, DirectoryEvictionRecallsSharersAndInvalidatesLlc) {
  // Fill one directory set (8 ways) of bank 0 with lines cached by core 0,
  // then touch a 9th conflicting line.
  std::vector<LineAddr> lines;
  for (std::uint64_t i = 0; i < 9; ++i) {
    // bank 0, same dir set: line = (i * 8 sets) stride in bank-local space
    lines.push_back(line_in_bank(0, i * 8));
  }
  for (std::uint64_t i = 0; i < 8; ++i) load(0, lines[i]);
  const auto before = fabric_.stats().dir_evictions;
  load(0, lines[8]);
  EXPECT_EQ(fabric_.stats().dir_evictions, before + 1);
  EXPECT_GE(fabric_.stats().llc_inval_by_dir, 1u);
  // Exactly one of the first 8 lines lost its directory entry and LLC line.
  unsigned missing = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    if (fabric_.dir(0).find(lines[i]) == nullptr) {
      ++missing;
      EXPECT_EQ(fabric_.llc(0).find(lines[i]), nullptr);
      EXPECT_EQ(fabric_.l1(0).find(lines[i]), nullptr) << "recall must purge L1";
    }
  }
  EXPECT_EQ(missing, 1u);
  expect_clean_scan();
}

TEST_F(FabricTest, DirectoryEvictionOfDirtyOwnerReachesMemory) {
  std::vector<LineAddr> lines;
  for (std::uint64_t i = 0; i < 9; ++i) lines.push_back(line_in_bank(0, i * 8));
  store(0, lines[0]);  // dirty owner
  for (std::uint64_t i = 1; i < 8; ++i) load(0, lines[i]);
  // Make the dirty line the PLRU victim by touching the others... order is
  // fill order; force eviction with the conflicting 9th line.
  load(0, lines[8]);
  // Whichever was evicted, reading everything back must observe the stored
  // version (writeback chain L1 -> LLC -> memory must not lose data).
  for (std::uint64_t i = 0; i < 9; ++i) load(1, lines[i]);
  EXPECT_EQ(checker_.violations(), 0u);
  expect_clean_scan();
}

TEST_F(FabricTest, SilentCleanEvictionLeavesStaleSharerTolerated) {
  const LineAddr a = line_in_bank(0, 0);
  const LineAddr b = line_in_bank(0, 8);
  const LineAddr c = line_in_bank(0, 16);
  load(0, a);  // E at core 0
  load(0, b);
  load(0, c);  // a or b silently evicted (clean)
  // Directory still lists core 0; a store by core 1 sends a wasted inval.
  store(1, a);
  EXPECT_EQ(checker_.violations(), 0u);
  expect_clean_scan();
}

TEST_F(FabricTest, LatencyOrdering) {
  const LineAddr l = line_in_bank(0, 40);
  const auto miss = load(0, l);
  const auto hit = load(0, l);
  EXPECT_TRUE(hit.l1_hit);
  EXPECT_GT(miss.latency, hit.latency);
  EXPECT_EQ(hit.latency, small_fabric_config().l1_hit_cycles);
  // A miss served from memory pays at least the home-node lookup (directory
  // and LLC probed in parallel) plus the memory access.
  const auto& cfg = fabric_.config();
  EXPECT_GE(miss.latency, cfg.mem_cycles + std::max(cfg.llc_cycles, cfg.dir_cycles));
}

TEST_F(FabricTest, BankContentionSerializesConcurrentRequests) {
  // Two different cores hitting the same bank at the same instant: the
  // second pays queueing delay when contention modelling is on.
  const LineAddr a = line_in_bank(0, 21);
  const LineAddr b = line_in_bank(0, 22);
  const auto o1 = fabric_.access(0, a, false, false, 1000);
  const auto o2 = fabric_.access(1, b, false, false, 1000);
  EXPECT_GT(o2.latency, o1.latency - 20);  // same path plus waiting
  FabricConfig no_contention = small_fabric_config();
  no_contention.model_bank_contention = false;
  Fabric f2(no_contention, nullptr);
  const auto p1 = f2.access(0, a, false, false, 1000);
  const auto p2 = f2.access(1, b, false, false, 1000);
  EXPECT_LE(p2.latency, o2.latency);
  (void)p1;
}

TEST_F(FabricTest, StatsAddCombines) {
  FabricStats a, b;
  a.l1_hits = 3;
  b.l1_hits = 4;
  a.e_dir_pj = 1.5;
  b.e_dir_pj = 2.5;
  a.add(b);
  EXPECT_EQ(a.l1_hits, 7u);
  EXPECT_DOUBLE_EQ(a.e_dir_pj, 4.0);
}

TEST(FabricScale, SixtyFourCoreMeshWorks) {
  // The sharer vector and mesh support up to 64 cores (8x8).
  FabricConfig cfg = small_fabric_config();
  cfg.cores = 64;
  cfg.mesh = MeshConfig{8, 8, 1, 1, 16, 8, 72};
  CoherenceChecker checker(true);
  Fabric fabric(cfg, &checker);
  Cycle t = 0;
  const LineAddr l = 5;
  fabric.access(0, l, true, false, t++);  // M at core 0
  for (CoreId c = 1; c < 64; ++c) {
    fabric.access(c, l, false, false, t++);  // everyone reads
  }
  const DirEntry* e = fabric.dir(fabric.home_of(l)).find(l);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(popcount64(e->sharers), 64u);
  // One writer invalidates all 63 other sharers.
  fabric.access(3, l, true, false, t++);
  EXPECT_GE(fabric.stats().l1_invals_sharer, 63u);
  EXPECT_EQ(checker.violations(), 0u);
  for (const auto& v : CoherenceChecker::scan(fabric)) ADD_FAILURE() << v;
}

// Parameterized protocol sweep: a producer/consumer/eviction mix must keep
// all invariants under every replacement policy and several directory sizes.
struct SweepParam {
  ReplPolicy repl;
  std::uint32_t dir_entries;
};

class FabricSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(FabricSweepTest, InvariantsHoldUnderChurn) {
  const SweepParam p = GetParam();
  FabricConfig cfg = small_fabric_config();
  cfg.l1.repl = p.repl;
  cfg.llc.repl = p.repl;
  cfg.dir.repl = p.repl;
  cfg.dir.entries_per_bank = p.dir_entries;
  CoherenceChecker checker(true);
  Fabric fabric(cfg, &checker);
  Cycle t = 0;
  Rng rng(99);
  for (int op = 0; op < 20000; ++op) {
    const CoreId c = static_cast<CoreId>(rng.next_below(4));
    const LineAddr l = rng.next_below(512);
    const bool write = rng.next_bool(0.3);
    // Coherent-only churn: random NC interleaving on the same lines would be
    // a data race the programming model forbids (tested separately through
    // the machine-level property tests, which respect task semantics).
    fabric.access(c, l, write, false, t++);
    if (op % 1000 == 0) {
      for (const auto& v : CoherenceChecker::scan(fabric)) {
        FAIL() << to_string(p.repl) << "/" << p.dir_entries << ": " << v;
      }
    }
  }
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_GT(fabric.stats().dir_evictions, 0u);  // churn actually stressed it
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string name = to_string(info.param.repl);
  name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
  return name + "_d" + std::to_string(info.param.dir_entries);
}

INSTANTIATE_TEST_SUITE_P(
    ReplAndSize, FabricSweepTest,
    ::testing::Values(SweepParam{ReplPolicy::kTreePlru, 64},
                      SweepParam{ReplPolicy::kTreePlru, 16},
                      SweepParam{ReplPolicy::kLru, 64},
                      SweepParam{ReplPolicy::kLru, 16},
                      SweepParam{ReplPolicy::kFifo, 64},
                      SweepParam{ReplPolicy::kFifo, 16}),
    sweep_name);

}  // namespace
}  // namespace raccd
