// Topology sweep: how does runtime-assisted coherence deactivation pay off
// as coherence traffic gets more expensive to route?
//
// Sweeps >= 2 workloads across flat / 2-socket / 4-socket machines under
// FullCoh, PT and RaCCD (first-touch page placement, so a task's dependence
// pages home on its scheduler-chosen socket) and reports the on-socket vs
// cross-socket traffic split. The paper's core claim predicts RaCCD's
// directory bypass converts its non-coherent fraction into *cross-socket*
// directory-transaction savings as the socket count grows — the final
// section checks that directly against FullCoh.
//
// Results merge into results/BENCH_grid.json and results/topology_sweep.csv.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  BenchOptions opts = BenchOptions::parse(argc, argv);
  const std::vector<std::string> workloads{"jacobi", "synthetic"};
  const std::vector<std::string> topologies{"flat", "numa2", "numa4"};

  const std::vector<RunSpec> specs = Grid()
                                         .workloads(workloads)
                                         .set_params(opts.params)
                                         .size(opts.size)
                                         .modes(kAllModes)
                                         .alloc(AllocPolicy::kFirstTouch)
                                         .topologies(topologies)
                                         .paper_machine(opts.paper_machine)
                                         .specs();
  std::fprintf(stderr,
               "topology sweep: %zu simulations (%zu workloads x %zu systems x "
               "%zu topologies), size=%s — cached results reused\n",
               specs.size(), workloads.size(), kAllModes.size(), topologies.size(),
               to_string(opts.size));
  const ResultSet rs = bench::run_logged(specs, opts);

  // Grid nesting (grid.hpp): workloads > modes > topologies (innermost).
  const auto at = [&](std::size_t w, std::size_t m, std::size_t t) -> const SimStats& {
    return rs[(w * kAllModes.size() + m) * topologies.size() + t];
  };

  std::printf("Topology sweep — on-socket vs cross-socket traffic (first-touch pages)\n");
  TextTable table({"workload", "topology", "system", "cycles", "flit-hops",
                   "cross-socket", "cross %", "dir reqs x-socket", "noc energy nJ"});
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    if (w != 0) table.add_separator();
    for (std::size_t t = 0; t < topologies.size(); ++t) {
      for (std::size_t m = 0; m < kAllModes.size(); ++m) {
        const SimStats& s = at(w, m, t);
        const double cross_pct =
            s.noc.total_flit_hops() == 0
                ? 0.0
                : 100.0 * static_cast<double>(s.noc.cross_socket.flit_hops) /
                      static_cast<double>(s.noc.total_flit_hops());
        table.add_row({workloads[w], topologies[t], to_string(s.mode),
                       format_count(s.cycles), format_count(s.noc.total_flit_hops()),
                       format_count(s.noc.cross_socket.flit_hops),
                       strprintf("%.1f", cross_pct),
                       format_count(s.fabric.dir_reqs_cross_socket),
                       strprintf("%.1f", s.noc_dyn_energy_pj / 1e3)});
      }
    }
  }
  table.print();
  if (table.write_csv("results/topology_sweep.csv")) {
    std::printf("(csv written to results/topology_sweep.csv)\n");
  }

  // The claim under test: RaCCD's directory bypass removes cross-socket
  // directory transactions (and their energy) relative to FullCoh.
  std::printf("\nRaCCD vs FullCoh on multi-socket machines:\n");
  bool any_reduction = false;
  const std::size_t raccd = static_cast<std::size_t>(CohMode::kRaCCD);
  const std::size_t full = static_cast<std::size_t>(CohMode::kFullCoh);
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    for (std::size_t t = 1; t < topologies.size(); ++t) {  // skip flat
      const SimStats& r = at(w, raccd, t);
      const SimStats& f = at(w, full, t);
      const bool reduced = r.fabric.dir_reqs_cross_socket < f.fabric.dir_reqs_cross_socket;
      any_reduction = any_reduction || reduced;
      std::printf(
          "  %-10s %-6s cross-socket dir reqs %8llu -> %8llu (%s), "
          "noc energy %8.1f -> %8.1f nJ\n",
          workloads[w].c_str(), topologies[t].c_str(),
          static_cast<unsigned long long>(f.fabric.dir_reqs_cross_socket),
          static_cast<unsigned long long>(r.fabric.dir_reqs_cross_socket),
          reduced ? "reduced" : "NOT reduced", f.noc_dyn_energy_pj / 1e3,
          r.noc_dyn_energy_pj / 1e3);
    }
  }
  std::printf("%s\n", any_reduction
                          ? "RESULT: RaCCD reduces cross-socket directory traffic."
                          : "RESULT: no cross-socket directory reduction observed!");
  return any_reduction ? 0 : 1;
}
