// Sorted, coalescing set of half-open address ranges.
//
// Used by the NCRT physical-range collapse logic, the Fig. 2 block
// classification tracker, and the dependence tests. Ranges are kept sorted
// and non-overlapping; insertion merges adjacent/overlapping ranges.
#pragma once

#include <cstdint>
#include <vector>

#include "raccd/common/types.hpp"

namespace raccd {

class IntervalSet {
 public:
  IntervalSet() = default;

  /// Insert [begin, end), merging with any overlapping or adjacent ranges.
  void insert(std::uint64_t begin, std::uint64_t end);
  void insert(const AddrRange& r) { insert(r.begin, r.end); }

  /// Remove [begin, end) from the set, splitting ranges as needed.
  void erase(std::uint64_t begin, std::uint64_t end);

  [[nodiscard]] bool contains(std::uint64_t point) const noexcept;
  /// True if any byte of [begin, end) is present.
  [[nodiscard]] bool overlaps(std::uint64_t begin, std::uint64_t end) const noexcept;
  /// True if every byte of [begin, end) is present.
  [[nodiscard]] bool covers(std::uint64_t begin, std::uint64_t end) const noexcept;

  [[nodiscard]] std::size_t range_count() const noexcept { return ranges_.size(); }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return ranges_.empty(); }
  void clear() noexcept { ranges_.clear(); }

  [[nodiscard]] const std::vector<AddrRange>& ranges() const noexcept { return ranges_; }

 private:
  // Index of the first range with end > point (candidate container of point).
  [[nodiscard]] std::size_t lower_index(std::uint64_t point) const noexcept;

  std::vector<AddrRange> ranges_;  // sorted by begin, non-overlapping, non-adjacent
};

}  // namespace raccd
