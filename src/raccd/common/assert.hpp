// Always-on assertions for simulator invariants.
//
// Protocol bugs silently corrupt statistics, so invariant checks stay active
// in release builds; the hot-path checks are cheap compares. RACCD_DEBUG_ASSERT
// compiles out in release for checks that are too hot to keep.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace raccd::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "RACCD_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::fflush(stderr);
  std::abort();
}
}  // namespace raccd::detail

#define RACCD_ASSERT(cond, msg)                                        \
  do {                                                                 \
    if (!(cond)) [[unlikely]] {                                        \
      ::raccd::detail::assert_fail(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                  \
  } while (false)

#ifdef NDEBUG
#define RACCD_DEBUG_ASSERT(cond, msg) \
  do {                                \
  } while (false)
#else
#define RACCD_DEBUG_ASSERT(cond, msg) RACCD_ASSERT(cond, msg)
#endif
