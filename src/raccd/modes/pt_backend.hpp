// OS page-table classification backend (paper §II-B, §V-A; Cuesta et al.,
// ISCA'11). Owns the PtClassifier: on each L1 miss the accessed virtual page
// is classified first-touch-private (non-coherent) or shared (coherent); a
// private page touched by a second core transitions to shared forever, and
// the accessor pays the recovery — flushing the previous owner's cached
// lines of the page and shooting down its TLB entry.
#pragma once

#include "raccd/core/pt_classifier.hpp"
#include "raccd/modes/coherence_backend.hpp"

namespace raccd {

class PtBackend final : public CoherenceBackend {
 public:
  explicit PtBackend(const BackendContext& ctx) : CoherenceBackend(ctx) {}

  [[nodiscard]] CohMode mode() const noexcept override { return CohMode::kPT; }
  [[nodiscard]] ClassifierView classifier() noexcept override {
    return {this, &PtBackend::classify_thunk};
  }
  void accumulate(SimStats& s) const override;

  [[nodiscard]] PtClassifier& pt() noexcept { return pt_; }

 private:
  static AccessClass classify_thunk(CoherenceBackend* self, CoreId c, VAddr vaddr,
                                    PAddr paddr, PageNum pframe, Cycle now);
  AccessClass classify(CoreId c, VAddr vaddr, PageNum pframe, Cycle now);
  void on_obs_trace() override;

  PtClassifier pt_;
  /// Interned trace-event names (valid iff obs_trace_ != nullptr).
  struct ObsIds {
    std::uint16_t flip = 0, vpage = 0, prev_owner = 0;
  } obs_ids_{};
};

}  // namespace raccd
