// The simulated machine: cores + TLBs + coherence fabric + runtime system,
// advanced by a deterministic discrete-event loop, with all coherence-mode
// policy delegated to a pluggable CoherenceBackend (src/raccd/modes/).
//
// Execution model (paper §II-C, Fig. 3): application code runs on the main
// thread creating tasks (spawn), paying creation/dependence-analysis costs;
// taskwait() is the global synchronisation point where all cores execute the
// created tasks. Each scheduled task body runs functionally once, recording
// its access trace, which is replayed access-by-access through the timing
// model: the loop always advances the core with the lowest local clock, so
// coherence transactions interleave in a deterministic global order.
//
// Mode policy lives entirely behind the backend seam: the backend's
// on_task_start/on_task_end hooks bracket every task (paper Fig. 3 for
// RaCCD's register/invalidate), and per-access non-coherence classification
// goes through a ClassifierView resolved once per task — the replay loop
// never branches on CohMode.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "raccd/coherence/checker.hpp"
#include "raccd/coherence/fabric.hpp"
#include "raccd/core/adr.hpp"
#include "raccd/mem/sim_memory.hpp"
#include "raccd/metrics/series.hpp"
#include "raccd/modes/coherence_backend.hpp"
#include "raccd/runtime/runtime.hpp"
#include "raccd/sim/config.hpp"
#include "raccd/sim/stats.hpp"
#include "raccd/tlb/tlb.hpp"

namespace raccd {

class Machine {
 public:
  explicit Machine(const SimConfig& cfg);

  // -- Application-facing API ---------------------------------------------------
  [[nodiscard]] SimMemory& mem() noexcept { return mem_; }
  /// Create a task (main thread pays creation + dependence analysis).
  TaskId spawn(TaskDesc desc);
  /// Global synchronisation point: execute all pending tasks to completion.
  void taskwait();
  /// Finalize and collect statistics (call once, after the last taskwait).
  [[nodiscard]] SimStats collect();

  // -- Introspection --------------------------------------------------------------
  [[nodiscard]] const SimConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] Runtime& runtime() noexcept { return rt_; }
  [[nodiscard]] CoherenceBackend& backend() noexcept { return *backend_; }
  [[nodiscard]] AdrController& adr() noexcept { return adr_; }
  [[nodiscard]] Cycle now() const noexcept { return main_clock_; }
  [[nodiscard]] CoherenceChecker* checker() noexcept {
    return cfg_.enable_checker ? &checker_ : nullptr;
  }

  /// Observer invoked as each task finishes, with the task's node (deps,
  /// name) and its recorded access trace — the hook trace capture
  /// (`apps/trace_capture.hpp`) uses to serialize whole workloads.
  using TraceSink = std::function<void(const TaskNode&, const AccessTrace&)>;
  void set_trace_sink(TraceSink sink) { trace_sink_ = std::move(sink); }

  /// Phase-resolved metric series (cfg.series.interval > 0); nullptr when
  /// sampling is disabled. Final sample lands when collect() runs.
  [[nodiscard]] const Series* series() const noexcept {
    return sampler_ ? &sampler_->series() : nullptr;
  }

 private:
  struct CoreState {
    Cycle clock = 0;
    bool sleeping = false;
    TaskId current = kNoTask;
    std::size_t cursor = 0;
    AccessTrace trace;
    Cycle busy_cycles = 0;
    /// Backend classification hook, resolved once per task (devirtualized).
    ClassifierView classify{};
  };

  /// Pop the awake core with the lowest (clock, id) from the run heap
  /// (kNoCore when every core sleeps). O(log cores) per step instead of the
  /// old O(cores) scan — the heap is what keeps the DES loop cheap at the
  /// 64-core counts multi-socket topologies reach.
  [[nodiscard]] CoreId pop_min_clock_core();
  /// Advance core c by one step (fetch a task, replay one record, or finish).
  void step(CoreId c);
  void start_task(CoreId c, TaskId t);
  void replay_record(CoreId c);
  void finish_task(CoreId c);
  void wake_sleepers(Cycle at);
  /// Live stats snapshot for the series sampler: counters as-of-now,
  /// occupancy fields *instantaneous* (valid entries vs capacity right now)
  /// rather than the time-averaged integrals collect() reports.
  void snapshot_stats(Cycle at, SimStats& s) const;

  SimConfig cfg_;
  /// RACCD_LEGACY_STRUCTURES: keep the one-heap-round-trip-per-step event
  /// loop (A/B baseline for bench/throughput). The default loop keeps
  /// stepping the minimum core without touching the heap while it provably
  /// remains the minimum — identical step order by the same (clock, id)
  /// tie-break, at a fraction of the host cost.
  bool legacy_;
  CoherenceChecker checker_;
  Fabric fabric_;
  AdrController adr_;
  SimMemory mem_;
  Runtime rt_;
  std::vector<Tlb> tlbs_;
  std::vector<CoreState> cores_;
  Cycle main_clock_ = 0;

  /// Min-heap over (local clock, core id) of awake cores. Invariant: every
  /// awake core has exactly one live entry at its current clock (entries go
  /// stale only if a core slept after its entry was consumed — the pop
  /// validates before returning). Lexicographic order reproduces the legacy
  /// linear scan's tie-break exactly (lowest clock, then lowest core id).
  using ClockEntry = std::pair<Cycle, CoreId>;
  std::priority_queue<ClockEntry, std::vector<ClockEntry>, std::greater<ClockEntry>>
      run_heap_;

  // accumulated runtime-cost stats
  Cycle create_cycles_ = 0;
  Cycle schedule_cycles_ = 0;
  Cycle wakeup_cycles_ = 0;
  Cycle register_cycles_ = 0;
  Cycle invalidate_cycles_ = 0;
  std::uint64_t flushed_nc_lines_ = 0;
  std::uint64_t flushed_nc_wbs_ = 0;
  std::uint64_t accesses_replayed_ = 0;
  bool collected_ = false;
  TraceSink trace_sink_;
  std::unique_ptr<StatSampler> sampler_;  ///< non-null iff series enabled

  /// Constructed last (it references fabric/mem/tlbs), destroyed first.
  std::unique_ptr<CoherenceBackend> backend_;
};

}  // namespace raccd
