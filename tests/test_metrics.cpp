// Metrics layer tests: schema completeness (every SimStats field reachable
// by name — the static list below is the contract a new field must join),
// kind-based formatting, selection parsing, emitter escaping, and the
// byte-compatibility + round-trip guarantees of the BENCH_grid.json payload.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <vector>

#include "raccd/harness/grid.hpp"
#include "raccd/metrics/diff.hpp"
#include "raccd/metrics/emit.hpp"
#include "raccd/metrics/histogram.hpp"
#include "raccd/metrics/metric_schema.hpp"

namespace raccd {
namespace {

// Every metric the schema must expose, by canonical dotted name. This list
// is deliberately spelled out: adding a field to SimStats (or a derived
// quantity) means adding a descriptor AND a line here, which is what keeps
// "silently unreported counter" impossible.
const char* const kExpectedNames[] = {
    "cycles", "time.busy_cycles", "time.core_utilization",
    // L1
    "fabric.l1_accesses", "fabric.l1_hits", "fabric.l1_misses", "fabric.l1_hit_rate",
    "fabric.l1_evictions", "fabric.l1_wb_coh", "fabric.l1_wb_nc",
    "fabric.l1_invals_sharer", "fabric.l1_invals_recall", "fabric.l1_flush_nc_lines",
    "fabric.l1_flush_nc_wbs", "fabric.l1_flush_page_lines", "fabric.l1_flush_page_wbs",
    // LLC
    "fabric.llc_lookups", "fabric.llc_hits", "fabric.llc_misses", "fabric.llc_hit_rate",
    "fabric.llc_nc_lookups", "fabric.llc_nc_hits", "fabric.llc_fills",
    "fabric.llc_evictions", "fabric.llc_inval_by_dir", "fabric.llc_wb_mem",
    "fabric.llc_touches",
    // Directory
    "fabric.dir_accesses", "fabric.dir_lookups", "fabric.dir_hits",
    "fabric.dir_misses", "fabric.dir_allocs", "fabric.dir_evictions",
    "fabric.dir_recall_msgs", "fabric.dir_wb_updates", "fabric.dir_nc_to_coh",
    "fabric.dir_coh_to_nc",
    // Transactions
    "fabric.coh_reads", "fabric.coh_writes", "fabric.upgrades", "fabric.nc_reads",
    "fabric.nc_writes", "fabric.owner_probes", "fabric.dir_reqs.cross_socket",
    "fabric.nc_reqs.cross_socket", "fabric.mem_reads", "fabric.mem_writes",
    "fabric.mem_wb_wait_cycles",
    // DRAM
    "dram.row_hits", "dram.row_misses", "dram.row_conflicts", "dram.row_hit_rate",
    "dram.queue_wait_cycles",
    // NoC
    "noc.messages", "noc.flits", "noc.flit_hops", "noc.flit_hops.on_socket",
    "noc.flit_hops.cross_socket", "noc.messages.cross_socket",
    "noc.flits.cross_socket", "noc.socket_link_flits",
    "noc.request.messages", "noc.request.flits", "noc.request.flit_hops",
    "noc.data.messages", "noc.data.flits", "noc.data.flit_hops",
    "noc.inval.messages", "noc.inval.flits", "noc.inval.flit_hops",
    "noc.ack.messages", "noc.ack.flits", "noc.ack.flit_hops",
    "noc.writeback.messages", "noc.writeback.flits", "noc.writeback.flit_hops",
    // NCRT / TLB / PT
    "ncrt.lookups", "ncrt.hits", "ncrt.inserts", "ncrt.overflows", "ncrt.clears",
    "tlb.lookups", "tlb.hits", "tlb.misses", "tlb.shootdowns", "tlb.evictions",
    "pt.first_touches", "pt.transitions",
    // ADR
    "adr.polls", "adr.grows", "adr.shrinks", "adr.entries_moved",
    "adr.entries_displaced", "adr.blocked_cycles",
    // Runtime
    "runtime.tasks", "runtime.edges", "runtime.accesses_replayed",
    "runtime.create_cycles", "runtime.schedule_cycles", "runtime.wakeup_cycles",
    "runtime.register_cycles", "runtime.invalidate_cycles",
    "runtime.flushed_nc_lines", "runtime.flushed_nc_wbs",
    // Blocks / occupancy / energy
    "blocks.touched", "blocks.noncoherent", "blocks.nc_fraction",
    "dir.avg_occupancy", "dir.avg_active_frac",
    "energy.dir_dyn_pj", "energy.llc_dyn_pj", "energy.noc_dyn_pj",
    "energy.mem_dyn_pj", "energy.mem_act_pj", "energy.mem_rd_pj",
    "energy.mem_wr_pj", "energy.mem_pre_pj", "energy.l1_dyn_pj",
    "energy.dir_leak_pj",
    "sampling.windows", "sampling.measured_tasks", "sampling.warmup_tasks",
    "sampling.ffwd_tasks", "sampling.measured_accesses", "sampling.ffwd_accesses",
    "sampling.scale", "sampling.cycles_ci95", "sampling.dir_accesses_ci95",
    "sampling.llc_hits_ci95", "sampling.noc_flits_ci95",
    "sampling.noc_flit_hops_ci95", "sampling.dram_row_hits_ci95",
    "sampling.dram_row_hit_rate_ci95", "sampling.dir_occupancy_ci95",
    // Open-loop service (per-request latency distributions)
    "service.requests",
    "service.queue.mean", "service.queue.p50", "service.queue.p95",
    "service.queue.p99", "service.queue.max",
    "service.svc.mean", "service.svc.p50", "service.svc.p95",
    "service.svc.p99", "service.svc.max",
    "service.e2e.mean", "service.e2e.p50", "service.e2e.p95",
    "service.e2e.p99", "service.e2e.max",
};

[[nodiscard]] SimStats distinctive_stats() {
  SimStats s;
  s.cycles = 123456789;
  s.fabric.dir_accesses = 42;
  s.fabric.llc_lookups = 1000;
  s.fabric.llc_hits = 250;
  s.fabric.dir_reqs_cross_socket = 17;
  s.noc.per_class[0].flit_hops = 7;
  s.noc.per_class[1].flit_hops = 5;
  s.noc.cross_socket.flit_hops = 3;
  s.dir_dyn_energy_pj = 1.5;
  s.llc_dyn_energy_pj = 2.25;
  s.noc_dyn_energy_pj = 0.125;
  s.dir_leak_energy_pj = 10.0;
  s.noncoherent_block_fraction = 0.5;
  s.avg_dir_occupancy = 0.125;
  s.tasks = 99;
  return s;
}

TEST(MetricSchema, EveryExpectedNameResolvesAndNothingElseExists) {
  const MetricSchema& schema = MetricSchema::instance();
  std::set<std::string> expected(std::begin(kExpectedNames), std::end(kExpectedNames));
  EXPECT_EQ(schema.all().size(), expected.size());
  for (const char* name : kExpectedNames) {
    const MetricDesc* m = schema.find(name);
    ASSERT_NE(m, nullptr) << "schema lacks " << name;
    EXPECT_STREQ(m->name, name);
    EXPECT_NE(m->doc[0], '\0') << name << " has no doc string";
  }
  // Every descriptor must be in the expected list (no unreviewed additions).
  for (const MetricDesc& m : schema.all()) {
    EXPECT_TRUE(expected.count(m.name)) << "unexpected metric " << m.name;
  }
}

TEST(MetricSchema, FlatKeysResolveAndAreUnique) {
  const MetricSchema& schema = MetricSchema::instance();
  std::set<std::string> keys;
  for (const MetricDesc& m : schema.all()) {
    EXPECT_TRUE(keys.insert(m.key).second) << "duplicate key " << m.key;
    EXPECT_EQ(schema.find(m.key), &m) << m.key;
  }
  // The legacy BENCH/CSV spellings are all reachable.
  for (const char* key : bench_metric_keys()) EXPECT_NE(schema.find(key), nullptr);
  for (const char* key : csv_metric_keys()) EXPECT_NE(schema.find(key), nullptr);
  for (const char* n : default_series_metrics()) EXPECT_NE(schema.find(n), nullptr);
}

TEST(MetricSchema, AccessorsReadTheRightFields) {
  const SimStats s = distinctive_stats();
  const MetricSchema& schema = MetricSchema::instance();
  EXPECT_EQ(schema.get("cycles").value(s).u, 123456789u);
  EXPECT_EQ(schema.get("fabric.dir_accesses").value(s).u, 42u);
  EXPECT_DOUBLE_EQ(schema.get("fabric.llc_hit_rate").value(s).d, 0.25);
  EXPECT_EQ(schema.get("noc.flit_hops").value(s).u, 12u);
  EXPECT_EQ(schema.get("noc.flit_hops.on_socket").value(s).u, 9u);
  EXPECT_DOUBLE_EQ(schema.get("energy.dir_dyn_pj").value(s).d, 1.5);
  // Lookup by flat key hits the same descriptor.
  EXPECT_EQ(&schema.get("dir_accesses"), &schema.get("fabric.dir_accesses"));
}

TEST(MetricSchema, KindFormatting) {
  const SimStats s = distinctive_stats();
  const MetricSchema& schema = MetricSchema::instance();
  EXPECT_EQ(schema.get("cycles").format(s), "123456789");
  EXPECT_EQ(schema.get("fabric.llc_hit_rate").format(s), "0.250000");
  EXPECT_EQ(schema.get("energy.llc_dyn_pj").format(s), "2.250");
}

TEST(MetricSchema, ParseSelection) {
  const MetricSchema& schema = MetricSchema::instance();
  std::vector<const MetricDesc*> sel;
  EXPECT_EQ(schema.parse_selection("cycles,dir.avg_occupancy,llc_hit_rate", sel), "");
  ASSERT_EQ(sel.size(), 3u);
  EXPECT_STREQ(sel[1]->name, "dir.avg_occupancy");
  EXPECT_STREQ(sel[2]->name, "fabric.llc_hit_rate");  // flat key resolved
  EXPECT_NE(schema.parse_selection("cycles,nope", sel), "");
  EXPECT_NE(schema.parse_selection("", sel), "");
  EXPECT_NE(schema.describe().find("dir.avg_occupancy"), std::string::npos);
  EXPECT_NE(schema.describe(true).find("| `cycles` |"), std::string::npos);
}

TEST(MetricSchema, DistributionKindFormatsWithOneDecimal) {
  SimStats s;
  s.service.requests = 7;
  s.service.e2e = {7, 1234.56, 1000.0, 2000.0, 3000.0, 3500.0};
  const MetricSchema& schema = MetricSchema::instance();
  const MetricDesc& m = schema.get("service.e2e.mean");
  EXPECT_EQ(m.kind, MetricKind::kDistribution);
  EXPECT_STREQ(to_string(m.kind), "distribution");
  EXPECT_EQ(m.format(s), "1234.6");
  EXPECT_EQ(schema.get("service_e2e_p99").format(s), "3000.0");
  EXPECT_EQ(schema.get("service.requests").value(s).u, 7u);
}

TEST(Histogram, ExactStatsAndBoundedPercentileError) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  // Empty distribution -> NaN (the emitters' null convention), never a
  // fake 0-cycle latency.
  EXPECT_TRUE(std::isnan(h.percentile(0.99)));
  EXPECT_TRUE(std::isnan(h.mean()));
  const DistSummary empty = h.summary();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_TRUE(std::isnan(empty.mean));
  EXPECT_TRUE(std::isnan(empty.p50));
  EXPECT_TRUE(std::isnan(empty.max));
  std::uint64_t sum = 0, mx = 0;
  // A wide, deterministic spread: values across many octaves.
  std::uint64_t v = 1;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 2000; ++i) {
    v = v * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t x = (v >> 20) % 10'000'000;
    values.push_back(x);
    h.add(x);
    sum += x;
    mx = std::max(mx, x);
  }
  EXPECT_EQ(h.count(), 2000u);
  EXPECT_DOUBLE_EQ(h.mean(), static_cast<double>(sum) / 2000.0);
  EXPECT_EQ(h.max_value(), mx);
  // Percentiles come from log-spaced buckets (32 per octave): relative
  // error vs the exact order statistic stays within one sub-bucket (~3.2%).
  std::sort(values.begin(), values.end());
  for (const double q : {0.50, 0.95, 0.99}) {
    const std::size_t rank = static_cast<std::size_t>(std::ceil(q * 2000.0)) - 1;
    const double exact = static_cast<double>(values[rank]);
    EXPECT_NEAR(h.percentile(q), exact, 0.04 * exact + 1.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.percentile(1.0), static_cast<double>(mx));
  const DistSummary ds = h.summary();
  EXPECT_EQ(ds.count, 2000u);
  EXPECT_DOUBLE_EQ(ds.max, static_cast<double>(mx));
  EXPECT_DOUBLE_EQ(ds.p50, h.percentile(0.50));
}

TEST(Histogram, InsertionOrderDoesNotMatter) {
  Histogram fwd, rev;
  std::vector<std::uint64_t> values;
  for (std::uint64_t i = 0; i < 500; ++i) values.push_back(i * i * 37 % 100000);
  for (const std::uint64_t x : values) fwd.add(x);
  std::reverse(values.begin(), values.end());
  for (const std::uint64_t x : values) rev.add(x);
  EXPECT_DOUBLE_EQ(fwd.percentile(0.5), rev.percentile(0.5));
  EXPECT_DOUBLE_EQ(fwd.percentile(0.99), rev.percentile(0.99));
  EXPECT_DOUBLE_EQ(fwd.mean(), rev.mean());
  EXPECT_EQ(fwd.max_value(), rev.max_value());
}

TEST(Emitters, ServiceBlockAppendsOnlyForServiceRuns) {
  SimStats s = distinctive_stats();
  ASSERT_EQ(s.service.requests, 0u);  // batch runs stay byte-identical
  EXPECT_EQ(bench_metrics_json(s).find("service_"), std::string::npos);
  s.service.requests = 3;
  s.service.e2e = {3, 10.0, 8.0, 12.0, 12.0, 12.0};
  const std::string payload = bench_metrics_json(s);
  EXPECT_NE(payload.find("\"service_requests\": 3"), std::string::npos);
  EXPECT_NE(payload.find("\"service_e2e_p99\": 12.0"), std::string::npos);
  BenchLog log;
  EXPECT_EQ(parse_bench_json("{\"k\": {" + payload + "}}", log), "");
  EXPECT_DOUBLE_EQ(log.at("k").at("service_e2e_p50"), 8.0);
}

TEST(Emitters, CsvCellQuoting) {
  EXPECT_EQ(csv_cell("plain"), "plain");
  EXPECT_EQ(csv_cell("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_cell("shape=pipeline,width=64"), "\"shape=pipeline,width=64\"");
  EXPECT_EQ(csv_cell("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_cell("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_cell("forced", true), "\"forced\"");
}

TEST(Emitters, JsonEscaping) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(json_escape(std::string("nul\x01") + "x"), "nul\\u0001x");
}

TEST(Emitters, NonFiniteValuesEmitAsNull) {
  SimStats s;
  s.avg_dir_occupancy = std::nan("");
  s.dir_dyn_energy_pj = std::numeric_limits<double>::infinity();
  const std::string payload = bench_metrics_json(s);
  EXPECT_NE(payload.find("\"avg_dir_occupancy\": null"), std::string::npos);
  EXPECT_NE(payload.find("\"dir_dyn_energy_pj\": null"), std::string::npos);
  // Still a valid JSON object for the diff loader.
  BenchLog log;
  EXPECT_EQ(parse_bench_json("{\"k\": {" + payload + "}}", log), "");
  EXPECT_TRUE(std::isnan(log.at("k").at("avg_dir_occupancy")));
}

TEST(Emitters, BenchPayloadIsByteCompatibleWithTheLegacyFormat) {
  const SimStats s = distinctive_stats();
  // The exact string the pre-schema hand-rolled emitter produced.
  const std::string legacy =
      "\"cycles\": 123456789, \"dir_accesses\": 42, \"llc_hit_rate\": 0.250000, "
      "\"noc_flit_hops\": 12, \"noc_on_socket_flit_hops\": 9, "
      "\"noc_cross_socket_flit_hops\": 3, \"dir_reqs_cross_socket\": 17, "
      "\"dir_dyn_energy_pj\": 1.500, \"llc_dyn_energy_pj\": 2.250, "
      "\"noc_dyn_energy_pj\": 0.125, \"dir_leak_energy_pj\": 10.000, "
      "\"nc_block_fraction\": 0.500000, \"avg_dir_occupancy\": 0.125000, "
      "\"tasks\": 99";
  EXPECT_EQ(bench_metrics_json(s), legacy);
}

TEST(Emitters, BenchJsonRoundTripsThroughTheDiffLoader) {
  const std::string dir = "test_metrics_tmp";
  std::filesystem::remove_all(dir);
  RunSpec spec;
  spec.app = "histo";
  spec.size = SizeClass::kTiny;
  const SimStats s = distinctive_stats();
  const ResultSet rs({spec}, {s});
  const std::string path = dir + "/BENCH.json";
  ASSERT_TRUE(rs.append_bench_json(path));
  BenchLog log;
  ASSERT_EQ(load_bench_json(path, log), "");
  ASSERT_EQ(log.size(), 1u);
  const MetricMap& m = log.at(spec.key());
  const MetricSchema& schema = MetricSchema::instance();
  EXPECT_EQ(m.size(), bench_metric_keys().size());
  for (const char* key : bench_metric_keys()) {
    ASSERT_TRUE(m.count(key)) << key;
    // Written with kind-fixed precision, so parse-back matches to 1e-6 rel.
    EXPECT_NEAR(m.at(key), schema.get(key).value(s).as_double(),
                1e-6 * (1.0 + std::fabs(schema.get(key).value(s).as_double())))
        << key;
  }
  std::filesystem::remove_all(dir);
}

TEST(Emitters, CsvEscapesParameterizedWorkloadRefs) {
  const std::string dir = "test_metrics_csv_tmp";
  std::filesystem::remove_all(dir);
  RunSpec spec;
  ASSERT_EQ(spec.set_workload_ref("synthetic:shape=pipeline,width=64"), "");
  const ResultSet rs({spec}, {distinctive_stats()});
  const std::string path = dir + "/out.csv";
  ASSERT_TRUE(rs.write_csv(path));
  std::ifstream in(path);
  std::string header, row;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));
  // The comma-bearing params cell arrives quoted; header cells are schema keys.
  EXPECT_NE(row.find("\"shape=pipeline,width=64\""), std::string::npos);
  EXPECT_NE(header.find("avg_dir_occupancy"), std::string::npos);
  // Same column count in header and row (quoted commas don't split).
  const auto count_cells = [](const std::string& line) {
    std::size_t cells = 1;
    bool quoted = false;
    for (const char c : line) {
      if (c == '"') quoted = !quoted;
      else if (c == ',' && !quoted) ++cells;
    }
    return cells;
  };
  EXPECT_EQ(count_cells(header), count_cells(row));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace raccd
