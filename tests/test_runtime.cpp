#include <gtest/gtest.h>

#include "raccd/runtime/runtime.hpp"

namespace raccd {
namespace {

TaskDesc task_with_deps(std::vector<DepSpec> deps) {
  TaskDesc d;
  d.body = [](TaskContext&) {};
  d.deps = std::move(deps);
  return d;
}

TEST(Runtime, IndependentTasksAllReady) {
  Runtime rt;
  rt.create_task(task_with_deps({DepSpec{0, 64, DepKind::kOut}}));
  rt.create_task(task_with_deps({DepSpec{64, 64, DepKind::kOut}}));
  rt.create_task(task_with_deps({}));
  EXPECT_EQ(rt.ready_count(), 3u);
}

TEST(Runtime, ChainExecutesInOrder) {
  Runtime rt;
  const TaskId a = rt.create_task(task_with_deps({DepSpec{0, 64, DepKind::kOut}}));
  const TaskId b = rt.create_task(task_with_deps({DepSpec{0, 64, DepKind::kInout}}));
  const TaskId c = rt.create_task(task_with_deps({DepSpec{0, 64, DepKind::kIn}}));
  EXPECT_EQ(rt.ready_count(), 1u);
  TaskId got;
  ASSERT_TRUE(rt.pop_ready(0, got));
  EXPECT_EQ(got, a);
  rt.start_task(a);
  std::uint32_t resolved = 0;
  EXPECT_TRUE(rt.finish_task(a, 0, resolved));
  EXPECT_EQ(resolved, 1u);
  ASSERT_TRUE(rt.pop_ready(0, got));
  EXPECT_EQ(got, b);
  rt.start_task(b);
  rt.finish_task(b, 0, resolved);
  ASSERT_TRUE(rt.pop_ready(0, got));
  EXPECT_EQ(got, c);
  rt.start_task(c);
  rt.finish_task(c, 0, resolved);
  EXPECT_TRUE(rt.all_finished());
}

TEST(Runtime, FifoVsLifoOrder) {
  Runtime fifo(SchedPolicy::kFifo);
  Runtime lifo(SchedPolicy::kLifo);
  for (int i = 0; i < 3; ++i) {
    fifo.create_task(task_with_deps({}));
    lifo.create_task(task_with_deps({}));
  }
  TaskId got;
  fifo.pop_ready(0, got);
  EXPECT_EQ(got, 0u);
  lifo.pop_ready(0, got);
  EXPECT_EQ(got, 2u);
}

TEST(Runtime, DiamondGraph) {
  // a fans out to b and c, which join at d.
  Runtime rt;
  rt.create_task(task_with_deps({DepSpec{0, 128, DepKind::kOut}}));    // a
  rt.create_task(task_with_deps({DepSpec{0, 64, DepKind::kInout}}));   // b
  rt.create_task(task_with_deps({DepSpec{64, 64, DepKind::kInout}}));  // c
  rt.create_task(task_with_deps({DepSpec{0, 128, DepKind::kIn}}));     // d
  EXPECT_EQ(rt.stats().edges, 4u);
  EXPECT_EQ(rt.tdg().critical_path_length(), 3u);
  TaskId got;
  ASSERT_TRUE(rt.pop_ready(0, got));
  EXPECT_EQ(got, 0u);
  EXPECT_FALSE(rt.pop_ready(0, got));
  rt.start_task(0);
  std::uint32_t resolved;
  rt.finish_task(0, 0, resolved);
  EXPECT_EQ(rt.ready_count(), 2u);
  TaskId b, c;
  rt.pop_ready(0, b);
  rt.pop_ready(0, c);
  rt.start_task(b);
  rt.start_task(c);
  rt.finish_task(b, 0, resolved);
  EXPECT_EQ(rt.ready_count(), 0u);  // d waits for both
  rt.finish_task(c, 0, resolved);
  EXPECT_EQ(rt.ready_count(), 1u);
}

TEST(Runtime, StatsTrackCreationAndWakeups) {
  Runtime rt;
  rt.create_task(task_with_deps({DepSpec{0, 64, DepKind::kOut}}));
  rt.create_task(task_with_deps({DepSpec{0, 64, DepKind::kIn}}));
  EXPECT_EQ(rt.stats().tasks_created, 2u);
  EXPECT_EQ(rt.stats().deps_registered, 2u);
  TaskId got;
  rt.pop_ready(0, got);
  rt.start_task(got);
  std::uint32_t resolved;
  rt.finish_task(got, 0, resolved);
  EXPECT_EQ(rt.stats().wakeups, 1u);
}

TEST(Runtime, CriticalPathOfChainAndIndependentSets) {
  Runtime chain;
  for (int i = 0; i < 10; ++i) {
    chain.create_task(task_with_deps({DepSpec{0, 64, DepKind::kInout}}));
  }
  EXPECT_EQ(chain.tdg().critical_path_length(), 10u);

  Runtime flat;
  for (int i = 0; i < 10; ++i) {
    flat.create_task(task_with_deps({DepSpec{static_cast<VAddr>(i) * 64, 64,
                                             DepKind::kInout}}));
  }
  EXPECT_EQ(flat.tdg().critical_path_length(), 1u);
}

// ---------------------------------------------------------------------------
// Scheduler policies
// ---------------------------------------------------------------------------

TEST(Scheduler, WorkStealOwnerPopsLifo) {
  Scheduler s(SchedPolicy::kWorkSteal, 4);
  s.push(1, 2);
  s.push(2, 2);
  s.push(3, 2);
  TaskId got;
  ASSERT_TRUE(s.pop(2, got));
  EXPECT_EQ(got, 3u);  // own deque: newest first (hot data)
  ASSERT_TRUE(s.pop(2, got));
  EXPECT_EQ(got, 2u);
  EXPECT_EQ(s.stats().local_pops, 2u);
  EXPECT_EQ(s.stats().steals, 0u);
}

TEST(Scheduler, ThiefStealsOldestFromNearestVictim) {
  Scheduler s(SchedPolicy::kWorkSteal, 4);
  s.push(1, 0);
  s.push(2, 0);
  TaskId got;
  ASSERT_TRUE(s.pop(3, got));
  EXPECT_EQ(got, 1u);  // steal the oldest (coldest) entry
  EXPECT_EQ(s.stats().steals, 1u);
  ASSERT_TRUE(s.pop(0, got));
  EXPECT_EQ(got, 2u);
  EXPECT_FALSE(s.pop(0, got));
}

TEST(Scheduler, WorkStealVisitsAllVictims) {
  Scheduler s(SchedPolicy::kWorkSteal, 4);
  s.push(7, 3);  // only core 3 has work
  TaskId got;
  ASSERT_TRUE(s.pop(1, got));
  EXPECT_EQ(got, 7u);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, StealOrderIsRoundRobinFromConsumer) {
  // Thieves probe victims at consumer+1, consumer+2, ... (mod cores): core 1
  // must take core 2's work before core 3's, then wrap around to core 0.
  Scheduler s(SchedPolicy::kWorkSteal, 4);
  s.push(30, 3);
  s.push(20, 2);
  s.push(0, 0);
  TaskId got;
  ASSERT_TRUE(s.pop(1, got));
  EXPECT_EQ(got, 20u);  // nearest victim clockwise is core 2
  ASSERT_TRUE(s.pop(1, got));
  EXPECT_EQ(got, 30u);  // then core 3
  ASSERT_TRUE(s.pop(1, got));
  EXPECT_EQ(got, 0u);  // wraps to core 0
  EXPECT_EQ(s.stats().steals, 3u);
  EXPECT_EQ(s.stats().local_pops, 0u);
}

TEST(Scheduler, StatsCountPushesPopsAndSteals) {
  Scheduler s(SchedPolicy::kWorkSteal, 4);
  for (TaskId t = 0; t < 5; ++t) s.push(t, t % 2);  // cores 0 and 1
  EXPECT_EQ(s.stats().pushes, 5u);
  TaskId got;
  ASSERT_TRUE(s.pop(0, got));  // local
  ASSERT_TRUE(s.pop(1, got));  // local
  ASSERT_TRUE(s.pop(2, got));  // must steal
  EXPECT_EQ(s.stats().local_pops, 2u);
  EXPECT_EQ(s.stats().steals, 1u);
  EXPECT_EQ(s.stats().pushes, 5u);  // pops never count as pushes
  // Central policies count pushes too but never local_pops/steals.
  Scheduler fifo(SchedPolicy::kFifo, 4);
  fifo.push(9, 0);
  ASSERT_TRUE(fifo.pop(3, got));
  EXPECT_EQ(fifo.stats().pushes, 1u);
  EXPECT_EQ(fifo.stats().local_pops, 0u);
  EXPECT_EQ(fifo.stats().steals, 0u);
}

TEST(Scheduler, SizeAggregatesAllDeques) {
  Scheduler s(SchedPolicy::kWorkSteal, 4);
  s.push(1, 0);
  s.push(2, 1);
  s.push(3, 3);
  EXPECT_EQ(s.size(), 3u);
  Scheduler c(SchedPolicy::kFifo, 4);
  c.push(1, 0);
  EXPECT_EQ(c.size(), 1u);
}

}  // namespace
}  // namespace raccd
