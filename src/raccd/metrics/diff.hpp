// Baseline-diff over benchmark logs: load two BENCH_grid.json files
// (baseline vs candidate), join them on RunSpec::key(), compare each metric
// under a per-kind tolerance, and report every out-of-tolerance delta — the
// primitive the CI perf gate (and `raccd-report diff`) runs on.
//
// Tolerance classes come from the MetricSchema kind of each flat key:
// counters are exact by default (the simulator is deterministic), cycle and
// energy totals get a percent band, ratios an absolute band. Spec keys
// present only in the baseline count as regressions (coverage loss); keys
// only in the candidate are reported but don't fail the gate. Entries whose
// key starts with "__" (the `__profile__` host-timing breakdown) are skipped
// entirely — host wall time is nondeterministic and must never gate.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace raccd {

/// One run's metrics; JSON null parses as NaN.
using MetricMap = std::map<std::string, double>;
/// RunSpec::key() -> metrics, as BENCH_grid.json stores them.
using BenchLog = std::map<std::string, MetricMap>;

/// Parse a BENCH_grid.json document. Returns "" or an error message.
[[nodiscard]] std::string parse_bench_json(std::string_view text, BenchLog& out);
/// Load + parse a file. Returns "" or an error message.
[[nodiscard]] std::string load_bench_json(const std::string& path, BenchLog& out);

struct DiffTolerances {
  double counter_pct = 0.0;  ///< exact: determinism is part of the contract
  double cycles_pct = 2.0;
  double energy_pct = 2.0;
  double ratio_abs = 0.02;   ///< absolute band for [0,1] ratios
  double default_pct = 2.0;  ///< metrics the schema doesn't know
};

struct DiffEntry {
  std::string key;     ///< RunSpec::key()
  std::string metric;  ///< flat metric key
  double base = 0.0;
  double cand = 0.0;
  double delta_pct = 0.0;  ///< 100*(cand-base)/base; 0 when both are 0
  bool out_of_tolerance = false;
};

struct BenchDiff {
  std::size_t keys_compared = 0;
  std::size_t metrics_compared = 0;
  std::vector<DiffEntry> exceeded;             ///< out-of-tolerance deltas only
  std::vector<std::string> only_in_base;       ///< coverage lost -> regression
  std::vector<std::string> only_in_candidate;  ///< new runs -> informational

  /// Out-of-tolerance deltas plus baseline keys the candidate dropped.
  [[nodiscard]] std::size_t regressions() const noexcept {
    return exceeded.size() + only_in_base.size();
  }
  /// Human (or markdown) report: verdict line, totals, every exceeded delta.
  [[nodiscard]] std::string report(bool markdown = false) const;
};

[[nodiscard]] BenchDiff diff_bench_logs(const BenchLog& base, const BenchLog& cand,
                                        const DiffTolerances& tol = {});

}  // namespace raccd
