#include "raccd/core/ncrt.hpp"

#include "raccd/common/assert.hpp"

namespace raccd {

Ncrt::Ncrt(std::uint32_t capacity) : capacity_(capacity) {
  RACCD_ASSERT(capacity_ > 0, "NCRT needs at least one entry");
  entries_.reserve(capacity_);
}

bool Ncrt::insert(PAddr start, PAddr end) {
  RACCD_ASSERT(start < end, "empty NCRT region");
  if (full()) {
    ++stats_.overflows;
    return false;
  }
  entries_.push_back(AddrRange{start, end});
  ++stats_.inserts;
  return true;
}

bool Ncrt::lookup(PAddr pa) noexcept {
  ++stats_.lookups;
  // Hardware compares all entries in parallel; a linear scan over <=32
  // entries models the same single-cycle CAM lookup.
  for (const AddrRange& r : entries_) {
    if (r.contains(pa)) {
      ++stats_.hits;
      return true;
    }
  }
  return false;
}

void Ncrt::clear() noexcept {
  entries_.clear();
  ++stats_.clears;
}

}  // namespace raccd
