// Paper Fig. 9: performance with Adaptive Directory Reduction — RaCCD+ADR
// versus FullCoh/PT/RaCCD at 1:1, normalized to FullCoh 1:1 per benchmark.
//
// Paper reference points: RaCCD tracks FullCoh within <2% on average (the
// exception is Kmeans, whose end-of-task flushes hurt L1 reuse), and adding
// ADR does not hurt because reconfigurations are rare.
#include <cstdio>

#include "bench_common.hpp"

using namespace raccd;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const auto& apps = paper_app_names();
  std::vector<RunSpec> specs;
  for (const auto& app : apps) {
    for (int variant = 0; variant < 4; ++variant) {
      RunSpec s;
      s.app = app;
      s.size = opts.size;
      s.paper_machine = opts.paper_machine;
      s.mode = variant == 0   ? CohMode::kFullCoh
               : variant == 1 ? CohMode::kPT
                              : CohMode::kRaCCD;
      s.adr = (variant == 3);
      specs.push_back(s);
    }
  }
  const auto results = run_all(specs, opts.run);

  std::printf("Fig. 9 — Normalized performance with ADR (FullCoh 1:1 = 1.0)\n");
  TextTable table({"app", "FullCoh", "PT", "RaCCD", "RaCCD+ADR", "reconfigs"});
  std::vector<double> sums(4, 0.0);
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const double base = static_cast<double>(results[a * 4].cycles);
    std::vector<std::string> row{apps[a]};
    for (int v = 0; v < 4; ++v) {
      const double norm = static_cast<double>(results[a * 4 + v].cycles) / base;
      sums[v] += norm;
      row.push_back(strprintf("%.3f", norm));
    }
    const auto& adr = results[a * 4 + 3].adr;
    row.push_back(strprintf("%llu", static_cast<unsigned long long>(adr.grows + adr.shrinks)));
    table.add_row(std::move(row));
  }
  table.add_separator();
  table.add_row({"AVG", strprintf("%.3f", sums[0] / apps.size()),
                 strprintf("%.3f", sums[1] / apps.size()),
                 strprintf("%.3f", sums[2] / apps.size()),
                 strprintf("%.3f", sums[3] / apps.size()), ""});
  table.print();
  table.write_csv("results/fig09_adr_performance.csv");
  std::printf("\npaper: RaCCD within <2%% of FullCoh on average (Kmeans outlier, "
              "+14.6%%); ADR adds no visible cost\n");
  return 0;
}
