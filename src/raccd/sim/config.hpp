// Simulation configuration: coherence modes and machine presets.
//
// Two presets:
//  * Paper  — paper Table I verbatim (32 MB LLC, 524288-entry directory).
//    Faithful but slow with full-size inputs; used with --paper.
//  * Scaled — the default: the same 16-core organisation with the LLC and
//    directory scaled down 16x so that the benchmarks' (scaled) working sets
//    keep the paper's working-set : LLC : directory-coverage ratios, which is
//    what the shape of every figure depends on (see DESIGN.md substitution #3).
//
// The directory-size sweep of the evaluation uses ratios 1:N, N in
// {1,2,4,8,16,64,256} (paper Fig. 6/7, Table III): a 1:N directory has N
// times fewer entries than the LLC has lines.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "raccd/coherence/fabric.hpp"
#include "raccd/core/adr_config.hpp"
#include "raccd/core/raccd_engine.hpp"
#include "raccd/mem/phys_memory.hpp"
#include "raccd/modes/coh_mode.hpp"
#include "raccd/runtime/scheduler.hpp"

namespace raccd {

/// The paper's directory-reduction sweep (Fig. 6/7, Table III).
inline constexpr std::array<std::uint32_t, 7> kDirRatios{1, 2, 4, 8, 16, 64, 256};

/// Runtime-system and ISA-extension cycle costs.
struct TimingConfig {
  Cycle task_create_cycles = 120;     ///< per task, on the creating thread
  Cycle dep_analysis_cycles = 40;     ///< per dependence at creation
  Cycle schedule_cycles = 150;        ///< scheduling phase per task (paper Fig. 3)
  Cycle wakeup_per_edge_cycles = 30;  ///< wake-up phase per resolved edge
  Cycle ncrt_lookup_cycles = 1;       ///< added to L1 miss path in RaCCD mode
  Cycle tlb_walk_cycles = 50;
  Cycle pt_shootdown_cycles = 400;  ///< TLB shootdown at private->shared
  Cycle swcoh_flush_call_cycles = 30;  ///< WbNC software cache-flush call at task end
  /// OoO miss overlap: the detailed 4-wide cores of the paper hide part of
  /// each miss behind independent work; the core-perceived stall is
  /// l1_hit + (latency - l1_hit) / miss_overlap (DESIGN.md substitution #1).
  double miss_overlap = 3.0;
};

/// Phase-resolved stat sampling (metrics/series.hpp): every `interval`
/// cycles the machine snapshots the selected metrics into a bounded Series.
/// Defined here (not in the metrics layer) so SimConfig can carry it without
/// inverting the layering; the sampler itself lives above in metrics/.
struct SeriesConfig {
  Cycle interval = 0;    ///< sampling period in cycles; 0 = disabled
  std::string metrics;   ///< comma-separated metric names; empty = default subset
  /// Ring bound: reaching it drops every second sample and doubles the
  /// effective interval, so memory stays O(max_samples) for any run length.
  std::uint32_t max_samples = 4096;
};

/// SMARTS-style sampled simulation (DESIGN.md substitution #12): tasks are
/// numbered in global start order and each period of `period` tasks splits
/// into a detailed-warmup prefix (`warmup` tasks, full timing, stats into a
/// scratch bucket), a measured window (`window` tasks, full timing, stats
/// measured), and a functional fast-forward remainder (state kept warm —
/// TLB, L1/LLC/directory tags, NCRT, PT classifier, DRAM row buffers, task
/// graph — but no NoC routing, DRAM queueing, or stall arithmetic; the clock
/// dilates by the running mean measured stall per access). Measured windows
/// extrapolate to run totals with per-metric 95% confidence intervals.
/// `window >= period` disables fast-forwarding entirely (an all-measured
/// sampled run reproduces the detailed SimStats exactly).
struct SamplingConfig {
  bool enabled = false;
  std::uint32_t period = 0;  ///< tasks per sampling period
  std::uint32_t window = 0;  ///< measured tasks per period
  std::uint32_t warmup = 1;  ///< detailed-warmup tasks preceding each window
};

/// Parse "period/window[/warmup]" (warmup defaults to 1) into `cfg` with
/// enabled=true. Returns "" on success or an error message.
[[nodiscard]] std::string parse_sampling(std::string_view token, SamplingConfig& cfg);

struct SimConfig {
  CohMode mode = CohMode::kRaCCD;
  FabricConfig fabric{};
  RaccdEngineConfig raccd{};
  AdrConfig adr{};
  TimingConfig timing{};
  std::uint32_t tlb_entries = 256;
  std::uint64_t phys_mb = 512;  ///< simulated physical memory
  AllocPolicy alloc_policy = AllocPolicy::kContiguous;
  SchedPolicy sched = SchedPolicy::kFifo;
  std::uint64_t seed = 42;
  bool enable_checker = false;
  SeriesConfig series{};  ///< phase-resolved sampling (off by default)
  SamplingConfig sampling{};  ///< sampled simulation (off by default)

  /// Default machine: 16 cores, 32 KB 2-way L1s, 2 MB LLC (128 KB/bank),
  /// directory 1:1 (2048 entries/bank).
  [[nodiscard]] static SimConfig scaled(CohMode mode = CohMode::kRaCCD);

  /// Paper Table I machine: 32 MB LLC (2 MB/bank), directory 1:1
  /// (32768 entries/bank).
  [[nodiscard]] static SimConfig paper(CohMode mode = CohMode::kRaCCD);

  /// Shrink the directory to 1:N of the LLC line count (paper Fig. 6/7).
  void set_dir_ratio(std::uint32_t n);

  /// Apply a machine-shape token ("flat", "cmesh[<K>]", "numa<S>" or
  /// "numa<S>x<C>") to fabric.topo; numa<S>x<C> also rescales the core count
  /// (per-bank LLC/directory sizes stay fixed, so totals scale with cores).
  /// Returns "" on success or an error message.
  [[nodiscard]] std::string apply_topology(std::string_view token);

  /// Apply a DRAM-model token ("simple", or "ddr" with '-'-separated
  /// modifiers — see dram/dram.hpp) to fabric.dram. Returns "" or an error.
  [[nodiscard]] std::string apply_dram(std::string_view token);

  /// Apply a sampled-simulation token ("period/window[/warmup]") to
  /// `sampling`. Returns "" or an error.
  [[nodiscard]] std::string apply_sampling(std::string_view token);

  [[nodiscard]] std::uint32_t dir_ratio() const noexcept {
    return fabric.llc.lines_per_bank / fabric.dir.entries_per_bank;
  }
  [[nodiscard]] std::uint64_t total_dir_entries() const noexcept {
    return static_cast<std::uint64_t>(fabric.dir.entries_per_bank) * fabric.cores;
  }
};

}  // namespace raccd
