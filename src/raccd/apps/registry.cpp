#include "raccd/apps/registry.hpp"

#include <algorithm>

#include "raccd/common/format.hpp"

namespace raccd {

WorkloadRegistry& WorkloadRegistry::instance() {
  static WorkloadRegistry registry;
  return registry;
}

bool WorkloadRegistry::add(WorkloadInfo info) {
  if (info.name.empty() || info.factory == nullptr) return false;
  const auto it = std::lower_bound(
      workloads_.begin(), workloads_.end(), info.name,
      [](const WorkloadInfo& w, const std::string& n) { return w.name < n; });
  if (it != workloads_.end() && it->name == info.name) return false;
  workloads_.insert(it, std::move(info));
  return true;
}

const WorkloadInfo* WorkloadRegistry::find(std::string_view name) const {
  const auto it = std::lower_bound(
      workloads_.begin(), workloads_.end(), name,
      [](const WorkloadInfo& w, std::string_view n) { return w.name < n; });
  if (it != workloads_.end() && it->name == name) return &*it;
  return nullptr;
}

std::vector<std::string> WorkloadRegistry::names(std::string_view family) const {
  std::vector<std::string> out;
  for (const WorkloadInfo& w : workloads_) {
    if (family.empty() || w.family == family) out.push_back(w.name);
  }
  return out;
}

std::vector<std::string> WorkloadRegistry::families() const {
  std::vector<std::string> out;
  for (const WorkloadInfo& w : workloads_) {
    if (std::find(out.begin(), out.end(), w.family) == out.end()) {
      out.push_back(w.family);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string WorkloadRegistry::unknown_name_message(std::string_view name) const {
  std::string known;
  for (const WorkloadInfo& w : workloads_) {
    if (!known.empty()) known += ", ";
    known += w.name;
  }
  return strprintf("unknown workload '%.*s' (registered: %s)",
                   static_cast<int>(name.size()), name.data(),
                   known.empty() ? "none" : known.c_str());
}

WorkloadParams WorkloadRegistry::supported_params(std::string_view name,
                                                  const WorkloadParams& params) const {
  const WorkloadInfo* w = find(name);
  if (w == nullptr) return params;
  WorkloadParams out;
  for (const auto& e : params.entries()) {
    if (w->schema.find(e.key) != nullptr) out.set(e.key, e.value);
  }
  return out;
}

std::unique_ptr<App> WorkloadRegistry::create(std::string_view name,
                                              const AppConfig& cfg,
                                              std::string* error) const {
  const WorkloadInfo* w = find(name);
  if (w == nullptr) {
    if (error != nullptr) *error = unknown_name_message(name);
    return nullptr;
  }
  const std::string verr = w->schema.validate(cfg.params);
  if (!verr.empty()) {
    if (error != nullptr) {
      *error = strprintf("workload '%s': %s", w->name.c_str(), verr.c_str());
    }
    return nullptr;
  }
  return w->factory(cfg);
}

std::string parse_workload_ref(std::string_view ref, std::string& name,
                               WorkloadParams& params) {
  const std::size_t colon = ref.find(':');
  name = std::string(ref.substr(0, colon));
  if (name.empty()) return "empty workload name";
  if (colon == std::string_view::npos) return {};
  return WorkloadParams::parse(ref.substr(colon + 1), params);
}

std::string format_workload_ref(std::string_view name, const WorkloadParams& params) {
  std::string out(name);
  if (!params.empty()) {
    out += ':';
    out += params.canonical();
  }
  return out;
}

}  // namespace raccd
