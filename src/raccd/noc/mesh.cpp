#include "raccd/noc/mesh.hpp"

#include "raccd/common/assert.hpp"

namespace raccd {
namespace {

[[nodiscard]] TopologyConfig flat_topo_from(const MeshConfig& cfg) {
  TopologyConfig t;
  t.kind = TopologyKind::kFlatMesh;
  t.sockets = 1;
  t.width = cfg.width;
  t.height = cfg.height;
  t.link_cycles = cfg.link_cycles;
  t.router_cycles = cfg.router_cycles;
  return t;
}

/// Geometry/timing authority is the topology; mirror the mesh's link timing
/// into it (and, for flat meshes, the grid dims) so one config cannot drift
/// from the other.
[[nodiscard]] TopologyConfig reconciled(const MeshConfig& cfg, TopologyConfig t) {
  t.link_cycles = cfg.link_cycles;
  t.router_cycles = cfg.router_cycles;
  if (t.kind == TopologyKind::kFlatMesh) {
    t.width = cfg.width;
    t.height = cfg.height;
  }
  return t;
}

}  // namespace

std::uint64_t NocStats::total_messages() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& c : per_class) sum += c.messages;
  return sum;
}
std::uint64_t NocStats::total_flits() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& c : per_class) sum += c.flits;
  return sum;
}
std::uint64_t NocStats::total_flit_hops() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& c : per_class) sum += c.flit_hops;
  return sum;
}
void NocStats::add(const NocStats& o) noexcept {
  for (std::size_t i = 0; i < per_class.size(); ++i) {
    per_class[i].messages += o.per_class[i].messages;
    per_class[i].flits += o.per_class[i].flits;
    per_class[i].flit_hops += o.per_class[i].flit_hops;
  }
  cross_socket.messages += o.cross_socket.messages;
  cross_socket.flits += o.cross_socket.flits;
  cross_socket.flit_hops += o.cross_socket.flit_hops;
  socket_link_flits += o.socket_link_flits;
}

Mesh::Mesh(const MeshConfig& cfg)
    : cfg_(cfg), topo_(flat_topo_from(cfg), cfg.width * cfg.height) {
  RACCD_ASSERT(cfg_.width > 0 && cfg_.height > 0, "empty mesh");
  RACCD_ASSERT(cfg_.flit_bytes > 0, "flit size must be positive");
}

Mesh::Mesh(const MeshConfig& cfg, const TopologyConfig& topo, std::uint32_t cores)
    : cfg_(cfg), topo_(reconciled(cfg, topo), cores) {
  RACCD_ASSERT(cfg_.flit_bytes > 0, "flit size must be positive");
}

std::uint32_t Mesh::flits_for(MsgClass cls) const noexcept {
  const std::uint32_t bytes = (cls == MsgClass::kResponseData || cls == MsgClass::kWriteback)
                                  ? cfg_.data_bytes
                                  : cfg_.control_bytes;
  return (bytes + cfg_.flit_bytes - 1) / cfg_.flit_bytes;
}

Cycle Mesh::latency(std::uint32_t from, std::uint32_t to, MsgClass cls) const noexcept {
  const Route r = topo_.route(from, to);
  if (r.total_hops() == 0) return 0;  // same tile: bank is local, no network traversal
  // Wormhole pipeline: head flit pays the route, body flits stream behind.
  return r.latency + (flits_for(cls) - 1);
}

Cycle Mesh::transfer(const Route& r, MsgClass cls) noexcept {
  NocStats& st = sink_ != nullptr ? *sink_ : stats_;
  const std::uint32_t flits = flits_for(cls);
  auto& pc = st.per_class[static_cast<std::size_t>(cls)];
  ++pc.messages;
  pc.flits += flits;
  pc.flit_hops += static_cast<std::uint64_t>(flits) * r.total_hops();
  if (r.socket_hops > 0) {
    ++st.cross_socket.messages;
    st.cross_socket.flits += flits;
    st.cross_socket.flit_hops += static_cast<std::uint64_t>(flits) * r.total_hops();
    st.socket_link_flits += static_cast<std::uint64_t>(flits) * r.socket_hops;
  }
  if (r.total_hops() == 0) return 0;
  return r.latency + (flits - 1);
}

}  // namespace raccd
