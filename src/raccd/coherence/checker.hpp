// End-to-end correctness checking for the coherence fabric.
//
// Two layers:
//  1. Value-version tracking: every store stamps the line with a fresh global
//     version; versions propagate with the data through L1, LLC and memory.
//     Under the task-ordering discipline every load must observe the version
//     of the last (globally ordered) store to its line — any protocol bug
//     that loses a writeback, serves stale LLC data, or invalidates the wrong
//     copy surfaces as a version mismatch.
//  2. Structural invariant scan over a quiesced fabric: SWMR, directory/LLC/L1
//     inclusivity for coherent lines, NC lines never tracked, dirty-implies-M.
//
// The checker is optional (tests enable it; the benchmark harness does not).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "raccd/common/flat_map.hpp"
#include "raccd/common/types.hpp"

namespace raccd {

class Fabric;

class CoherenceChecker {
 public:
  /// strict=true aborts on first violation (tests); false only counts.
  explicit CoherenceChecker(bool strict = true) : strict_(strict) {}

  void on_store(LineAddr line, std::uint64_t version);
  void on_load(LineAddr line, std::uint64_t observed);

  [[nodiscard]] std::uint64_t violations() const noexcept { return violations_; }
  [[nodiscard]] std::uint64_t loads_checked() const noexcept { return loads_checked_; }
  [[nodiscard]] std::uint64_t stores_seen() const noexcept { return stores_seen_; }

  /// Structural invariant scan; returns human-readable violations (empty when
  /// the fabric state is consistent).
  [[nodiscard]] static std::vector<std::string> scan(const Fabric& fabric);

 private:
  void fail(LineAddr line, std::uint64_t expected, std::uint64_t observed);

  bool strict_;
  bool legacy_ = legacy_structures();
  /// Shadow version of the last store to every line, consulted on every
  /// load — a hot line-granular map. Paged direct array by default (absent
  /// = 0, same as the map); legacy unordered_map behind the A/B toggle.
  PagedLineMap golden_flat_;
  std::unordered_map<LineAddr, std::uint64_t> golden_;  ///< legacy path
  std::uint64_t violations_ = 0;
  std::uint64_t loads_checked_ = 0;
  std::uint64_t stores_seen_ = 0;
};

}  // namespace raccd
