// Experiment harness: declarative run specs, a work-stealing host-parallel
// executor (exec/sweep_executor.hpp — one deterministic simulation per job,
// no shared mutable state, results committed in spec order), and a
// file-backed result cache so the Fig. 6/7a-d binaries — which share one
// 9-app x 4-system x 7-size grid (FullCoh/PT/RaCCD plus the WbNC
// software-coherence baseline) — compute it only once.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "raccd/apps/app.hpp"
#include "raccd/metrics/series.hpp"
#include "raccd/obs/profiler.hpp"
#include "raccd/sim/config.hpp"
#include "raccd/sim/stats.hpp"

namespace raccd {

struct RunSpec {
  std::string app = "jacobi";
  /// Workload knob overrides in canonical "k=v,k2=v2" form (see
  /// WorkloadParams::canonical()); empty = size-class defaults only, which
  /// keeps legacy cache keys unchanged.
  std::string params;
  SizeClass size = SizeClass::kSmall;
  CohMode mode = CohMode::kFullCoh;
  std::uint32_t dir_ratio = 1;
  bool adr = false;
  // ADR hysteresis band; only non-default values enter the key.
  double adr_theta_inc = 0.80;
  double adr_theta_dec = 0.20;
  bool paper_machine = false;
  std::uint64_t seed = 42;
  // Overheads / ablation knobs.
  Cycle ncrt_latency = 1;
  std::uint32_t ncrt_entries = 32;
  AllocPolicy alloc = AllocPolicy::kContiguous;
  SchedPolicy sched = SchedPolicy::kFifo;
  /// Machine-shape token (topo/topology.hpp): "flat" (default, legacy cache
  /// keys unchanged), "cmesh[<K>]", "numa<S>" or "numa<S>x<C>".
  std::string topo = "flat";
  /// Memory-system token (dram/dram.hpp): "simple" (default, legacy cache
  /// keys unchanged and flat-latency behavior byte-identical) or
  /// "ddr[-open|-closed][-fcfs|-frfcfs][-ch<N>][-bk<N>]".
  std::string dram = "simple";
  /// Phase-resolved sampling (metrics/series.hpp): sample the selected
  /// metrics every `series_interval` cycles (0 = off; empty selection =
  /// default subset). Sampling never perturbs the simulation, so the cache
  /// key is unchanged — the executor instead refuses to satisfy a sampling
  /// spec from the stats cache (a cached SimStats carries no series).
  Cycle series_interval = 0;
  std::string series_metrics;
  /// Sampled-simulation token (sim/config.hpp SamplingConfig):
  /// "period/window[/warmup]" in tasks, e.g. "10/1/1" — alternate functional
  /// fast-forward with detailed measurement windows and extrapolate. Empty
  /// (default) = fully detailed; the key gains a token only when sampling is
  /// on, so legacy cache keys stay valid and sampled results re-key the
  /// stats cache instead of polluting detailed entries.
  std::string sampling;

  /// "name" or "name:k=v,...": the registry reference this spec runs.
  [[nodiscard]] std::string workload_ref() const;
  /// Set app + params from a registry reference; returns "" or an error.
  [[nodiscard]] std::string set_workload_ref(std::string_view ref);

  /// Stable identity string (cache key and log label).
  [[nodiscard]] std::string key() const;
};

/// Build the SimConfig a spec describes.
[[nodiscard]] SimConfig config_for(const RunSpec& spec);

/// Run one simulation: build machine, run app, *verify the functional
/// result* (aborts on corruption — every benchmark run is also an
/// end-to-end correctness test), and collect stats. When the spec samples a
/// series and `series_out` is non-null, the recorded Series is copied there
/// (cheap next to the simulation: at most max_samples rows).
[[nodiscard]] SimStats run_one(const RunSpec& spec, Series* series_out = nullptr);

/// Like run_one, but *run-level* failures — unknown workload, invalid
/// parameters, functional verification mismatch — return nullopt with the
/// message in `*error` instead of aborting, so the sweep executor can report
/// the failing spec's key and drain the rest of the sweep. Simulator
/// invariant violations (RACCD_ASSERT deep inside the Machine) still abort.
/// `phase_hook`, when set, fires on every sampled-simulation phase
/// transition with (phase, window index) — the sweep progress strip uses it
/// to show whether a worker is fast-forwarding or measuring. `release_hook`,
/// when set, fires on every open-loop release batch with the total requests
/// released so far (the strip's `|rel<N>` suffix). `profile`, when set,
/// receives the run's wall-time breakdown (setup vs simulate) — host-side
/// observation only, never part of the stats or the cache key.
[[nodiscard]] std::optional<SimStats> run_one_checked(
    const RunSpec& spec, Series* series_out, std::string* error,
    const std::function<void(SimPhase, std::uint64_t)>& phase_hook = {},
    const std::function<void(std::uint64_t)>& release_hook = {},
    obs::RunProfile* profile = nullptr);

struct RunOptions {
  /// Worker threads for the sweep (--jobs). 0 = hardware concurrency;
  /// 1 = serial inline on the calling thread (the historical behavior, and
  /// required for per-process RACCD_LEGACY_STRUCTURES A/B toggling).
  unsigned jobs = 0;
  bool use_cache = true;    ///< file-backed cache under cache_dir
  std::string cache_dir = "results/cache";
  bool verbose = false;     ///< progress lines to stderr
  /// Deterministic work partition for fanning one sweep across machines:
  /// shard k of N executes the deduped to-run list positions with
  /// `slot % shard_count == shard_index`. Out-of-shard specs return cached
  /// results when available and zeroed stats otherwise; merging is by run
  /// key through the shared cache directory (or the bench JSON files).
  unsigned shard_index = 0;
  unsigned shard_count = 1;
};

/// Run all specs over the work-stealing executor (cache-aware); results
/// align with specs, and because each worker commits into its spec's slot,
/// the vector — and every file derived from it — is byte-identical between
/// -j1 and -jN. `series_out`, when non-null, is resized to specs.size();
/// entries for sampling specs hold their series (others stay empty).
/// Sampling specs never load from the stats cache — they must execute to
/// record. On a failed spec the sweep stops issuing work, drains in-flight
/// runs, reports every failure's RunSpec::key(), and aborts.
[[nodiscard]] std::vector<SimStats> run_all(const std::vector<RunSpec>& specs,
                                            const RunOptions& opts = {},
                                            std::vector<Series>* series_out = nullptr);

/// Common CLI/env options for the bench binaries:
/// --size=tiny|small|medium|paper|large, --paper (machine preset),
/// --topology=T, --dram=D, --sample=period/window[/warmup], --no-cache,
/// --jobs=N / -jN (worker threads; --threads=N is a legacy alias),
/// --verbose, --shard=i/N (deterministic sweep partition), and repeatable
/// --set key=value workload-parameter passthrough (env: RACCD_SIZE,
/// RACCD_PAPER, RACCD_NO_CACHE, RACCD_JOBS, RACCD_THREADS, RACCD_SHARD).
struct BenchOptions {
  SizeClass size = SizeClass::kSmall;
  bool paper_machine = false;
  /// Machine-shape token for every run of the binary's grid (default flat).
  std::string topo = "flat";
  /// Memory-system token for every run of the binary's grid (default simple).
  std::string dram = "simple";
  /// Sampled-simulation token for every run of the grid (empty = detailed).
  std::string sampling;
  /// --set overrides, applied to every workload of the binary's grid.
  WorkloadParams params;
  RunOptions run{};

  static BenchOptions parse(int argc, char** argv);
};

}  // namespace raccd
