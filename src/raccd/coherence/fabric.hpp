// The coherence fabric: private L1s + banked shared LLC + banked sparse
// directory + mesh NoC + memory controllers (optionally backed by the
// channel/bank/row-buffer DRAM model of dram/dram.hpp), driven as atomic
// transactions.
//
// Every memory access runs to completion in protocol order ("now" values are
// globally non-decreasing because the simulation advances the core with the
// lowest local clock first). Per-bank busy windows model serialization at
// directory/LLC banks. This reproduces the quantities the paper's figures
// plot — directory accesses/occupancy, LLC hit ratio, NoC traffic, energy,
// and latency — without modelling protocol transient states (see DESIGN.md
// substitution #2).
//
// Non-coherent (NC) transactions (paper §III-C.3): requests flagged NC go to
// the home LLC bank only and never allocate directory state; NC lines carry
// the NC bit through L1 and LLC. Transitions between coherent and
// non-coherent (paper §III-E) allocate/deallocate the directory entry on
// demand.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "raccd/cache/l1_cache.hpp"
#include "raccd/cache/llc_bank.hpp"
#include "raccd/coherence/directory.hpp"
#include "raccd/coherence/fabric_stats.hpp"
#include "raccd/common/flat_map.hpp"
#include "raccd/common/types.hpp"
#include "raccd/dram/dram.hpp"
#include "raccd/energy/energy_model.hpp"
#include "raccd/noc/mesh.hpp"

namespace raccd {

class CoherenceChecker;

namespace obs {
class TraceSink;
}

/// Execution phase of the sampled simulator (SamplingConfig). The fabric's
/// *state* transitions (L1/LLC/directory tags, MESI, NC bits, memory
/// versions, DRAM row buffers) are identical in every phase — phases differ
/// only in timing fidelity and in which stats bucket the events land in:
///  * kMeasured — full detailed timing, stats into the measured bucket
///    (detailed runs spend their whole life here).
///  * kWarmup   — full detailed timing, stats into a scratch bucket so the
///    cold-state bias right after a fast-forward stretch never enters the
///    measured rates.
///  * kFfwd     — functional fast-forward: no NoC routing, no bank busy
///    windows, no DRAM queueing/timing (row-buffer state still tracks the
///    stream via DramController::warm_touch); stats into the ffwd bucket.
enum class SimPhase : std::uint8_t { kMeasured = 0, kWarmup, kFfwd };

struct FabricConfig {
  std::uint32_t cores = 16;
  L1Geometry l1{};
  LlcGeometry llc{};
  DirGeometry dir{};
  MeshConfig mesh{};
  /// Machine shape (flat mesh by default; flat grid dims and link timing are
  /// reconciled from `mesh` so the two configs cannot drift).
  TopologyConfig topo{};
  Cycle l1_hit_cycles = 2;
  Cycle llc_cycles = 15;
  Cycle dir_cycles = 15;
  Cycle mem_cycles = 150;
  Cycle invalidate_walk_cycles_per_line = 1;  ///< raccd_invalidate L1 walk cost
  bool model_bank_contention = true;
  EnergyConfig energy{};
  /// Memory system behind the controllers (dram/dram.hpp). The default
  /// kSimple model reproduces the flat mem_cycles latency byte-identically.
  DramConfig dram{};
  /// Physical line-count hint: pre-sizes the memory version map (and bounds
  /// its rehashing on large runs). 0 = small default.
  std::uint64_t phys_lines_hint = 0;
};

/// Per-line classification for paper Fig. 2: a block counts as non-coherent
/// iff it is touched and never accessed coherently.
class BlockClassifier {
 public:
  void record(LineAddr line, bool nc);
  [[nodiscard]] std::uint64_t touched_blocks() const noexcept;
  [[nodiscard]] std::uint64_t coherent_blocks() const noexcept;
  [[nodiscard]] std::uint64_t noncoherent_blocks() const noexcept;
  [[nodiscard]] double noncoherent_fraction() const noexcept;

 private:
  static constexpr std::uint8_t kSawNc = 1, kSawCoh = 2;
  std::vector<std::uint8_t> flags_;
};

class Fabric {
 public:
  explicit Fabric(const FabricConfig& cfg, CoherenceChecker* checker = nullptr);

  /// One load/store by core `c` to physical line `line` at time `now`.
  /// `nc` is the caller's classification (NCRT hit, or PT private page).
  AccessOutcome access(CoreId c, LineAddr line, bool is_write, bool nc, Cycle now);

  /// Account `n` run-length-merged repeat accesses as guaranteed L1 hits
  /// (the trace replayer proves residency; see trace/access_trace.hpp).
  void count_l1_repeat_hits(std::uint64_t n) noexcept {
    st().l1_accesses += n;
    st().l1_hits += n;
    st().e_l1_pj += static_cast<double>(n) * energy_.l1_access_pj();
  }

  /// Select the execution phase for subsequent operations (see SimPhase).
  /// The machine flips this per task; detailed runs never leave kMeasured.
  void set_phase(SimPhase p) noexcept {
    phase_ = p;
    cur_ = p == SimPhase::kMeasured ? &stats_
                                    : (p == SimPhase::kWarmup ? &warm_stats_ : &ffwd_stats_);
    mesh_.set_stats_sink(p == SimPhase::kMeasured ? nullptr : &noc_scratch_);
  }
  [[nodiscard]] SimPhase phase() const noexcept { return phase_; }
  /// Scratch buckets (warmup + ffwd events), for the no-measured-window
  /// fallback and for sampling telemetry.
  [[nodiscard]] const FabricStats& warm_stats() const noexcept { return warm_stats_; }
  [[nodiscard]] const FabricStats& ffwd_stats() const noexcept { return ffwd_stats_; }
  [[nodiscard]] const NocStats& noc_scratch_stats() const noexcept { return noc_scratch_; }

  struct FlushOutcome {
    std::uint64_t lines = 0;       ///< lines invalidated
    std::uint64_t writebacks = 0;  ///< dirty lines written back
    Cycle cycles = 0;              ///< cost charged to the flushing core
  };

  /// raccd_invalidate: sequentially walk core c's L1 and flush NC lines
  /// (paper §III-C.4). Clean NC lines drop silently; dirty ones write back.
  FlushOutcome flush_nc_lines(CoreId c, Cycle now);

  /// PT recovery: flush all lines of physical page `frame` from core c's L1
  /// (page reclassified private -> shared).
  FlushOutcome flush_page_lines(CoreId c, PageNum frame, Cycle now);

  // -- ADR support -------------------------------------------------------------
  struct ResizeOutcome {
    std::uint32_t moved = 0;
    std::uint32_t displaced = 0;
    Cycle blocked_cycles = 0;
  };
  /// Power directory bank `b` to `new_active_sets`; displaced entries are
  /// recalled. The bank is blocked for the returned window. Must not be
  /// called from inside access() (the sim loop runs ADR between accesses).
  ResizeOutcome resize_dir_bank(BankId b, std::uint32_t new_active_sets, Cycle now);

  /// Banks whose directory occupancy changed since the last call (bitmask,
  /// one bit per bank, up to the 64-core limit); reading clears the mask.
  /// The ADR monitor polls this between accesses.
  [[nodiscard]] std::uint64_t take_dir_occupancy_dirty_mask() noexcept {
    const std::uint64_t m = dir_dirty_mask_;
    dir_dirty_mask_ = 0;
    return m;
  }

  /// Flush time-weighted occupancy integrals at end of simulation.
  void finalize(Cycle end_time);

  // -- Accessors ----------------------------------------------------------------
  [[nodiscard]] const FabricConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const Topology& topology() const noexcept { return mesh_.topology(); }
  /// Home LLC/directory bank of a line — owned by the topology (socket-local
  /// interleave on NUMA; the legacy `line & (cores-1)` on one socket).
  [[nodiscard]] BankId home_of(LineAddr line) const noexcept {
    return topology().home_bank(line);
  }
  /// Instantaneous valid/active directory occupancy across `socket`'s banks.
  [[nodiscard]] double socket_dir_occupancy(std::uint32_t socket) const noexcept;
  [[nodiscard]] L1Cache& l1(CoreId c) noexcept { return *l1_[c]; }
  [[nodiscard]] const L1Cache& l1(CoreId c) const noexcept { return *l1_[c]; }
  [[nodiscard]] LlcBank& llc(BankId b) noexcept { return *llc_[b]; }
  [[nodiscard]] const LlcBank& llc(BankId b) const noexcept { return *llc_[b]; }
  [[nodiscard]] DirectoryBank& dir(BankId b) noexcept { return *dir_[b]; }
  [[nodiscard]] const DirectoryBank& dir(BankId b) const noexcept { return *dir_[b]; }
  [[nodiscard]] Mesh& mesh() noexcept { return mesh_; }
  [[nodiscard]] const Mesh& mesh() const noexcept { return mesh_; }
  [[nodiscard]] FabricStats& stats() noexcept { return stats_; }
  [[nodiscard]] const FabricStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const EnergyModel& energy() const noexcept { return energy_; }
  [[nodiscard]] const BlockClassifier& classifier() const noexcept { return classifier_; }
  [[nodiscard]] std::uint64_t mem_version(LineAddr line) const noexcept;

  /// Average directory occupancy across banks [0,1] (valid after finalize()).
  [[nodiscard]] double avg_dir_occupancy(Cycle end_time) const noexcept;

  /// Attach a simulated-time event trace (obs/trace_sink.hpp); nullptr
  /// detaches. Records coherent<->NC line transitions at the directory and
  /// per-bank DRAM busy spans + queue depths. Pure observation: never
  /// consulted by timing or state transitions.
  void set_obs_trace(obs::TraceSink* sink);

 private:
  struct MissResult {
    Cycle latency = 0;
    bool llc_hit = false;
    std::uint64_t version = 0;
    Mesi grant = Mesi::kShared;
  };

  // Message + energy accounting; returns the message latency.
  Cycle msg(std::uint32_t from, std::uint32_t to, MsgClass cls);
  // Bank occupancy: wait + service; returns wait+service time.
  Cycle bank_service(Cycle& busy_until, Cycle arrive, Cycle service) noexcept;

  void count_dir_access(BankId b);
  void count_llc_touch(BankId b);

  MissResult coherent_miss(CoreId c, LineAddr line, bool is_write, Cycle now);
  MissResult nc_miss(CoreId c, LineAddr line, bool is_write, Cycle now);
  Cycle upgrade_to_m(CoreId c, LineAddr line, Cycle now);

  /// Invalidate all L1 copies listed by `e` (skipping `skip`), writing dirty
  /// owner data back into the resident LLC line. Returns the slowest
  /// inval/ack leg (invals run in parallel).
  Cycle recall_sharers(BankId b, DirEntry& e, CoreId skip, Cycle now);
  /// Remove the LLC line (writing it back to memory if dirty).
  Cycle drop_llc_line(BankId b, LineAddr line, bool due_to_dir, Cycle now);
  /// Evict a directory entry: recall sharers, drop the LLC line, remove.
  Cycle evict_dir_entry(BankId b, const DirEntry& victim, Cycle now);
  /// Fill `line` into its home LLC bank, evicting a victim if needed.
  Cycle llc_fill(BankId b, LineAddr line, bool nc, bool dirty, std::uint64_t version,
                 Cycle now);
  /// Memory fetch legs from home bank b, arriving at the controller as of
  /// `now` + the request leg; returns latency, sets version.
  Cycle mem_fetch(BankId b, LineAddr line, std::uint64_t& version, Cycle now);
  /// Posted writeback to memory: occupies a controller write-queue slot
  /// (kDdr) and accounts the delivery latency into mem_wb_wait_cycles.
  void mem_writeback(BankId b, LineAddr line, std::uint64_t version, Cycle now);
  /// DRAM controller serving node `mc` (kDdr model only).
  [[nodiscard]] DramController& dram_at(std::uint32_t mc);
  void account_dram(const DramOutcome& out, bool is_write);

  void handle_l1_victim(CoreId c, const L1Line& victim, Cycle now);
  void mark_dir_dirty(BankId b, Cycle now);

  void store_version_bump(L1Line& l, LineAddr line);

  FabricConfig cfg_;
  EnergyModel energy_;
  Mesh mesh_;
  std::vector<std::unique_ptr<L1Cache>> l1_;
  std::vector<std::unique_ptr<LlcBank>> llc_;
  std::vector<std::unique_ptr<DirectoryBank>> dir_;
  std::vector<Cycle> dir_busy_;
  std::vector<Cycle> llc_busy_;
  /// One controller per distinct memory-controller tile (per socket on
  /// NUMA); empty under the kSimple model. mc_of_[node] indexes dram_.
  std::vector<DramController> dram_;
  std::vector<std::uint32_t> mc_of_;
  bool legacy_;  ///< RACCD_LEGACY_STRUCTURES: hash map instead of paged array
  /// Checker shadow version of every line in memory. The paged direct array
  /// (absent = 0, like the map) makes the per-writeback/per-read lookup a
  /// shift+index instead of a hash probe; legacy_ keeps the original map for
  /// bench/throughput A/B runs.
  PagedLineMap mem_flat_;
  std::unordered_map<LineAddr, std::uint64_t> mem_version_;  ///< legacy path
  std::vector<double> dir_access_pj_;  ///< cached per-bank per-access energy
  /// The stats bucket of the current phase (set_phase): &stats_ in measured
  /// windows and in detailed runs, the scratch buckets otherwise. Every
  /// internal counter/energy update goes through this.
  [[nodiscard]] FabricStats& st() noexcept { return *cur_; }
  FabricStats stats_;       ///< measured bucket (the run totals when detailed)
  FabricStats warm_stats_;  ///< detailed-warmup scratch bucket
  FabricStats ffwd_stats_;  ///< fast-forward scratch bucket
  NocStats noc_scratch_;    ///< warmup NoC traffic (ffwd sends no messages)
  FabricStats* cur_ = &stats_;
  SimPhase phase_ = SimPhase::kMeasured;
  BlockClassifier classifier_;
  CoherenceChecker* checker_;
  std::uint64_t version_counter_ = 0;
  std::uint64_t dir_dirty_mask_ = 0;

  // -- simulated-time event tracing (null = off; pure observation)
  obs::TraceSink* obs_ = nullptr;
  struct ObsIds {
    std::uint16_t deactivate = 0, reactivate = 0, busy = 0, line = 0,
                  wait = 0, row = 0;
  } obs_ids_{};
  /// Per-(controller, channel) interned counter names ("read_q mc0 ch1").
  std::vector<std::pair<std::uint16_t, std::uint16_t>> obs_q_names_;
  /// Emit the busy span + queue counters for one serviced DRAM request
  /// (arrive = when it reached the controller; ctrl indexes dram_).
  void trace_dram(std::uint32_t ctrl, const DramOutcome& out, Cycle arrive);
};

}  // namespace raccd
