#include "raccd/mem/page_table.hpp"

#include "raccd/common/assert.hpp"

namespace raccd {

void PageTable::map(PageNum vpage, PageNum pframe) {
  if (vpage >= entries_.size()) entries_.resize(vpage + 1, kUnmapped);
  RACCD_ASSERT(entries_[vpage] == kUnmapped, "virtual page double-mapped");
  entries_[vpage] = static_cast<std::int64_t>(pframe);
  ++mapped_count_;
}

PageNum PageTable::frame_of(PageNum vpage) const {
  RACCD_ASSERT(mapped(vpage), "translation of unmapped virtual page");
  return static_cast<PageNum>(entries_[vpage]);
}

PAddr PageTable::translate(VAddr va) const {
  return (frame_of(page_of(va)) << kPageShift) | page_offset(va);
}

}  // namespace raccd
