// One bank of the shared last-level cache (paper Table I: 32 MB unified LLC
// banked 2 MB/core, 8-way, 15 cycles, pseudoLRU, 64 B lines).
//
// Lines are interleaved across banks at line granularity by the fabric;
// within a bank the set index uses the line address above the bank bits.
// Each line carries an NC flag: NC-resident lines have no directory entry
// (paper III-C.3), which is what relieves directory capacity pressure.
#pragma once

#include <cstdint>
#include <vector>

#include "raccd/cache/replacement.hpp"
#include "raccd/common/flat_map.hpp"
#include "raccd/common/types.hpp"

namespace raccd {

struct LlcLine {
  LineAddr line = 0;
  bool valid = false;
  bool dirty = false;
  bool nc = false;
  std::uint64_t version = 0;  ///< checker shadow value
};

struct LlcGeometry {
  std::uint32_t lines_per_bank = 32768;  ///< paper: 2 MB / 64 B
  std::uint32_t ways = 8;
  std::uint32_t bank_bits = 4;  ///< log2(bank count); strips bank-select bits
  ReplPolicy repl = ReplPolicy::kTreePlru;

  [[nodiscard]] std::uint32_t sets() const noexcept { return lines_per_bank / ways; }
};

class LlcBank {
 public:
  explicit LlcBank(const LlcGeometry& geo);

  [[nodiscard]] std::uint32_t set_of(LineAddr line) const noexcept {
    return static_cast<std::uint32_t>(line >> bank_bits_) & (sets_ - 1);
  }

  [[nodiscard]] LlcLine* find(LineAddr line) noexcept;
  [[nodiscard]] const LlcLine* find(LineAddr line) const noexcept {
    return const_cast<LlcBank*>(this)->find(line);
  }
  void touch(const LlcLine& l) noexcept;

  /// Pick the way a fill of `line` would use. If the chosen way holds a valid
  /// line, that victim must be evicted by the caller *before* calling fill
  /// (the caller may need directory recalls, which can themselves invalidate
  /// LLC lines). Returns the victim line by value (valid=false if free way).
  [[nodiscard]] LlcLine peek_victim(LineAddr line) noexcept;

  /// Install a line. The target way must be free (caller evicted the victim).
  LlcLine& fill(LineAddr line, bool nc, bool dirty, std::uint64_t version);

  /// Invalidate one line if present; returns old contents (valid=false if absent).
  LlcLine invalidate(LineAddr line) noexcept;

  /// Visit every valid line (checker scans, tests).
  template <typename F>
  void for_each_valid(F&& f) const {
    for (const auto& l : lines_) {
      if (l.valid) f(l);
    }
  }

  [[nodiscard]] std::uint32_t sets() const noexcept { return sets_; }
  [[nodiscard]] std::uint32_t ways() const noexcept { return ways_; }
  [[nodiscard]] std::uint32_t valid_lines() const noexcept { return valid_count_; }
  [[nodiscard]] std::uint32_t line_capacity() const noexcept { return sets_ * ways_; }

 private:
  /// Sentinel in the SoA tag array marking an invalid way (real line numbers
  /// are paddr >> 6, far below 2^64-1).
  static constexpr LineAddr kNoTag = ~LineAddr{0};

  [[nodiscard]] LlcLine& at(std::uint32_t set, std::uint32_t way) noexcept {
    return lines_[static_cast<std::size_t>(set) * ways_ + way];
  }
  void set_tag(std::uint32_t set, std::uint32_t way, LineAddr tag) noexcept {
    tags_[static_cast<std::size_t>(set) * ways_ + way] = tag;
  }

  std::uint32_t sets_;
  std::uint32_t ways_;
  std::uint32_t bank_bits_;
  bool legacy_;  ///< RACCD_LEGACY_STRUCTURES: probe the AoS structs instead
  std::vector<LlcLine> lines_;
  /// SoA mirror of (valid, line); find() scans this contiguous vector.
  std::vector<LineAddr> tags_;
  ReplacementState repl_;
  std::uint32_t valid_count_ = 0;
};

}  // namespace raccd
