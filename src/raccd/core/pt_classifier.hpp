// Page-Table private/shared classification — the PT baseline (paper §II-B,
// §V-A; Cuesta et al., ISCA'11).
//
// First-touch marks a page private to the touching core; accesses to private
// pages go non-coherent. When a *different* core touches the page it becomes
// shared forever: the previous owner's cached blocks of the page are flushed
// and its TLB entry shot down (costs charged to the accessor, who waits for
// the recovery). Because pages never transition back, temporarily-private
// data (task data migrating between cores under a dynamic scheduler) ends up
// classified shared — the inaccuracy RaCCD removes.
#pragma once

#include <cstdint>
#include <vector>

#include "raccd/common/types.hpp"

namespace raccd {

enum class PageClass : std::uint8_t { kUntouched = 0, kPrivate, kShared };

struct PtClassifierStats {
  std::uint64_t first_touches = 0;
  std::uint64_t transitions = 0;  ///< private -> shared reclassifications
};

class PtClassifier {
 public:
  struct Decision {
    bool noncoherent = false;   ///< access may use the NC variant
    bool transition = false;    ///< page just went private -> shared
    CoreId prev_owner = kNoCore;  ///< valid when transition
  };

  /// Classify an access by core `c` to virtual page `vpage` and update the
  /// page state. On a transition the caller must flush the previous owner's
  /// cached lines of the page and shoot down its TLB entry.
  Decision on_access(CoreId c, PageNum vpage);

  [[nodiscard]] PageClass class_of(PageNum vpage) const noexcept;
  [[nodiscard]] CoreId owner_of(PageNum vpage) const noexcept;
  [[nodiscard]] const PtClassifierStats& stats() const noexcept { return stats_; }

 private:
  struct PageState {
    PageClass cls = PageClass::kUntouched;
    CoreId owner = kNoCore;
  };
  std::vector<PageState> pages_;  // dense by vpage
  PtClassifierStats stats_;
};

}  // namespace raccd
