#include "raccd/dram/dram.hpp"

#include <algorithm>

#include "raccd/common/assert.hpp"
#include "raccd/common/bits.hpp"
#include "raccd/common/format.hpp"

namespace raccd {

DramController::DramController(const DramConfig& cfg) : cfg_(cfg) {
  RACCD_ASSERT(is_pow2(cfg_.channels), "DRAM channel count must be a power of two");
  RACCD_ASSERT(is_pow2(cfg_.banks), "DRAM bank count must be a power of two");
  const std::uint32_t lines_per_row = cfg_.row_bytes / kLineBytes;
  RACCD_ASSERT(lines_per_row > 0 && is_pow2(lines_per_row),
               "DRAM row must hold a power-of-two number of lines");
  ch_bits_ = log2_exact(cfg_.channels);
  bank_bits_ = log2_exact(cfg_.banks);
  row_line_bits_ = log2_exact(lines_per_row);
  channels_.resize(cfg_.channels);
  for (Channel& ch : channels_) {
    ch.banks.resize(cfg_.banks);
    ch.read_q.reserve(cfg_.read_queue_slots);
    ch.write_q.reserve(cfg_.write_queue_slots);
  }
}

Cycle DramController::wait_for_slot(std::vector<Cycle>& q, std::uint32_t slots,
                                    Cycle t) {
  // Entries are completion times of in-flight requests; drop the finished
  // ones, then drain the earliest completer until a slot frees up.
  std::erase_if(q, [t](Cycle done) { return done <= t; });
  while (q.size() >= slots) {
    const auto earliest = std::min_element(q.begin(), q.end());
    t = std::max(t, *earliest);
    q.erase(earliest);
  }
  return t;
}

DramOutcome DramController::service(LineAddr line, Cycle arrive, bool is_write) {
  // Address mapping: line-interleaved channels, then row:bank:column — a row
  // is `row_bytes` of consecutive lines, consecutive rows rotate banks, so
  // streaming access row-hits within a row and spreads across banks.
  const std::uint32_t ch_idx = static_cast<std::uint32_t>(line & (cfg_.channels - 1));
  Channel& ch = channels_[ch_idx];
  const std::uint64_t col = line >> ch_bits_;
  const std::uint32_t bank_idx =
      static_cast<std::uint32_t>((col >> row_line_bits_) & (cfg_.banks - 1));
  Bank& bank = ch.banks[bank_idx];
  const std::uint64_t row = col >> (row_line_bits_ + bank_bits_);

  DramOutcome out;
  out.channel = ch_idx;
  out.bank = bank_idx;
  Cycle start = arrive;
  // Writebacks occupy write-queue slots that backpressure reads: a full
  // write queue forces a drain before *any* request issues.
  start = wait_for_slot(ch.write_q, cfg_.write_queue_slots, start);
  if (!is_write) start = wait_for_slot(ch.read_q, cfg_.read_queue_slots, start);

  const bool hit = bank.open && bank.row == row;
  const bool conflict = bank.open && bank.row != row;
  // FR-FCFS lets a row hit issue as soon as its bank and bus allow; FCFS
  // (and any non-hit) honors the channel's in-order issue point.
  if (cfg_.sched == DramSched::kFcfs || !hit) start = std::max(start, ch.last_start);
  start = std::max(start, bank.busy_until);

  Cycle lat = 0;
  if (conflict) {
    // The open row must precharge first; a young row also waits out tRAS.
    const Cycle pre_at = std::max(start, bank.ras_ready);
    lat = (pre_at - start) + cfg_.t_rp;
    out.precharged = true;
  }
  if (!hit) {
    lat += cfg_.t_rcd;
    out.activated = true;
  }
  lat += cfg_.t_cas;
  // The burst serializes on the channel data bus — except that FR-FCFS lets
  // a row hit's burst slip into an idle bus slot ahead of a slower earlier
  // request (the reordering that makes the policy pay).
  Cycle done = start + lat + cfg_.t_burst;
  const bool bypass = cfg_.sched == DramSched::kFrFcfs && hit;
  if (!bypass) done = std::max(done, ch.bus_busy_until + cfg_.t_burst);
  ch.bus_busy_until = std::max(ch.bus_busy_until, done);
  if (out.activated) bank.ras_ready = (done - cfg_.t_burst - cfg_.t_cas) + cfg_.t_ras;

  bank.row = row;
  bank.open = true;
  bank.busy_until = done;
  if (cfg_.page == PagePolicy::kClosed) {
    // Auto-precharge after every access: the bank reopens from scratch.
    bank.busy_until = done + cfg_.t_rp;
    bank.open = false;
    out.precharged = true;
  }
  ch.last_start = std::max(ch.last_start, start);
  (is_write ? ch.write_q : ch.read_q).push_back(done);
  out.read_depth = static_cast<std::uint32_t>(ch.read_q.size());
  out.write_depth = static_cast<std::uint32_t>(ch.write_q.size());

  out.wait = start - arrive;
  out.latency = done - start;
  out.row = hit ? DramOutcome::Row::kHit
                : (conflict ? DramOutcome::Row::kConflict : DramOutcome::Row::kEmpty);
  return out;
}

void DramController::warm_touch(LineAddr line) noexcept {
  // Same address mapping as service(), state transitions only: no busy
  // windows, no tRAS bookkeeping, no queue slots.
  Channel& ch = channels_[line & (cfg_.channels - 1)];
  const std::uint64_t col = line >> ch_bits_;
  Bank& bank = ch.banks[(col >> row_line_bits_) & (cfg_.banks - 1)];
  if (cfg_.page == PagePolicy::kClosed) {
    bank.open = false;
    return;
  }
  bank.row = col >> (row_line_bits_ + bank_bits_);
  bank.open = true;
}

std::string parse_dram(std::string_view token, DramConfig& cfg) {
  DramConfig out;  // modifiers apply over the ddr defaults
  if (token.empty()) return "empty DRAM token";
  if (token == "simple") {
    out.model = DramModel::kSimple;
    cfg = out;
    return {};
  }
  std::size_t pos = 0;
  bool first = true;
  while (pos <= token.size()) {
    std::size_t dash = token.find('-', pos);
    if (dash == std::string_view::npos) dash = token.size();
    const std::string_view part = token.substr(pos, dash - pos);
    pos = dash + 1;
    if (first) {
      if (part != "ddr") {
        return strprintf("unknown DRAM model '%.*s' (expected 'simple' or 'ddr[-...]')",
                         static_cast<int>(part.size()), part.data());
      }
      out.model = DramModel::kDdr;
      first = false;
      continue;
    }
    const auto parse_pow2 = [&part](std::size_t skip, std::uint32_t max,
                                    std::uint32_t& dst) {
      std::uint32_t v = 0;
      if (skip >= part.size()) return false;
      for (std::size_t i = skip; i < part.size(); ++i) {
        if (part[i] < '0' || part[i] > '9') return false;
        v = v * 10 + static_cast<std::uint32_t>(part[i] - '0');
        if (v > max) return false;  // also blocks silent uint32 wraparound
      }
      if (v == 0 || !is_pow2(v)) return false;
      dst = v;
      return true;
    };
    if (part == "open") {
      out.page = PagePolicy::kOpen;
    } else if (part == "closed") {
      out.page = PagePolicy::kClosed;
    } else if (part == "fcfs") {
      out.sched = DramSched::kFcfs;
    } else if (part == "frfcfs") {
      out.sched = DramSched::kFrFcfs;
    } else if (part.substr(0, 2) == "ch") {
      if (!parse_pow2(2, 16, out.channels)) {
        return strprintf("bad channel count '%.*s' (power of two, 1..16)",
                         static_cast<int>(part.size()), part.data());
      }
    } else if (part.substr(0, 2) == "bk") {
      if (!parse_pow2(2, 64, out.banks)) {
        return strprintf("bad bank count '%.*s' (power of two, 1..64)",
                         static_cast<int>(part.size()), part.data());
      }
    } else {
      return strprintf("unknown DRAM modifier '%.*s' (open|closed|fcfs|frfcfs|chN|bkN)",
                       static_cast<int>(part.size()), part.data());
    }
  }
  cfg = out;
  return {};
}

}  // namespace raccd
